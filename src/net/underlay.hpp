#pragma once

#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"
#include "util/function_ref.hpp"

namespace vdm::net {

/// Abstraction of the physical network as the overlay perceives it.
///
/// Three implementations exist:
///  * GraphUnderlay  — hosts attached to a router topology; paths, delays
///    and losses come from shortest-path routing (the NS-2-style substrate
///    of the paper's Chapter 3/4 experiments).
///  * MatrixUnderlay — direct host-to-host latency/loss matrices (the
///    PlanetLab-style substrate of Chapter 5, where no router map exists
///    and "network usage" replaces per-link stress).
///  * CoordUnderlay  — hosts as points in an embedded metric space
///    (lat/lon or a synthetic plane); delay is O(1) arithmetic over the two
///    endpoints' coordinates with O(N) total state, the substrate for
///    100k+-member scaling runs where an O(N²) matrix cannot exist.
///
/// Overlay code depends only on this interface, so every protocol runs
/// unchanged on both substrates.
class Underlay {
 public:
  virtual ~Underlay() = default;

  /// Number of end hosts available to the overlay.
  virtual std::size_t num_hosts() const = 0;

  /// One-way delay between two hosts, seconds. Requires a != b reachable.
  virtual sim::Time delay(HostId a, HostId b) const = 0;

  /// Round-trip time, the probe measurement VDM/HMTP act on.
  sim::Time rtt(HostId a, HostId b) const { return 2.0 * delay(a, b); }

  /// End-to-end per-packet drop probability a -> b.
  virtual double loss(HostId a, HostId b) const = 0;

  /// Physical links traversed a -> b, for stress accounting. A
  /// MatrixUnderlay reports one pseudo-link per host pair. Allocates the
  /// result; hot paths should prefer for_each_path_link().
  virtual std::vector<LinkId> path(HostId a, HostId b) const = 0;

  /// Visits the links of path(a, b) in order without materializing the
  /// vector. Both shipped underlays override this allocation-free; the
  /// default exists so ad-hoc test doubles only need path().
  virtual void for_each_path_link(HostId a, HostId b,
                                  util::FunctionRef<void(LinkId)> visit) const {
    for (const LinkId l : path(a, b)) visit(l);
  }

  /// One-way delay contributed by a single link (for network-usage sums).
  virtual double link_delay(LinkId link) const = 0;

  /// Total number of physical (or pseudo-) links.
  virtual std::size_t num_links() const = 0;

  /// True when delay()/loss()/path visits may run concurrently from several
  /// threads. Matrix and coordinate substrates are pure reads over immutable
  /// arrays; the graph substrate fills mutable per-pair and per-tree caches
  /// on read, so it must stay single-threaded (and returns the default).
  /// Intra-session parallel phases only engage when this is true.
  virtual bool concurrent_reads() const { return false; }

  /// True when loss() is identically zero for every host pair. A loss-free
  /// data plane draws no randomness per chunk edge (Rng::chance(0) draws
  /// nothing), which is what lets the chunk flood shard across threads
  /// without perturbing the rng stream.
  virtual bool zero_loss() const { return false; }
};

}  // namespace vdm::net
