#include "net/graph.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace vdm::net {

NodeId Graph::add_node() {
  adjacency_dirty_ = true;
  ++version_;
  return static_cast<NodeId>(num_nodes_++);
}

NodeId Graph::add_nodes(std::size_t count) {
  VDM_REQUIRE(count > 0);
  const auto first = static_cast<NodeId>(num_nodes_);
  num_nodes_ += count;
  adjacency_dirty_ = true;
  ++version_;
  return first;
}

LinkId Graph::add_link(NodeId a, NodeId b, double delay, double loss) {
  VDM_REQUIRE(a < num_nodes_ && b < num_nodes_);
  VDM_REQUIRE_MSG(a != b, "self-loops are not physical links");
  VDM_REQUIRE(delay > 0.0);
  VDM_REQUIRE(loss >= 0.0 && loss < 1.0);
  links_.push_back(Link{a, b, delay, loss});
  adjacency_dirty_ = true;
  ++version_;
  return static_cast<LinkId>(links_.size() - 1);
}

std::span<const Graph::Arc> Graph::arcs(NodeId n) const {
  VDM_REQUIRE(n < num_nodes_);
  if (adjacency_dirty_) rebuild_adjacency();
  return {arcs_.data() + offsets_[n], offsets_[n + 1] - offsets_[n]};
}

void Graph::rebuild_adjacency() const {
  offsets_.assign(num_nodes_ + 1, 0);
  for (const Link& l : links_) {
    ++offsets_[l.a + 1];
    ++offsets_[l.b + 1];
  }
  for (std::size_t i = 1; i <= num_nodes_; ++i) offsets_[i] += offsets_[i - 1];
  arcs_.resize(2 * links_.size());
  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  for (LinkId id = 0; id < links_.size(); ++id) {
    const Link& l = links_[id];
    arcs_[cursor_[l.a]++] = Arc{l.b, id, l.delay};
    arcs_[cursor_[l.b]++] = Arc{l.a, id, l.delay};
  }
  adjacency_dirty_ = false;
}

void Graph::clear() {
  num_nodes_ = 0;
  links_.clear();
  offsets_.clear();
  arcs_.clear();
  adjacency_dirty_ = true;
  ++version_;
}

std::size_t Graph::capacity_bytes() const {
  return links_.capacity() * sizeof(Link) +
         offsets_.capacity() * sizeof(std::size_t) +
         arcs_.capacity() * sizeof(Arc) +
         cursor_.capacity() * sizeof(std::size_t);
}

bool Graph::connected() const {
  if (num_nodes_ <= 1) return true;
  std::vector<char> seen(num_nodes_, 0);
  std::vector<NodeId> stack{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (const Arc& arc : arcs(n)) {
      if (!seen[arc.to]) {
        seen[arc.to] = 1;
        ++visited;
        stack.push_back(arc.to);
      }
    }
  }
  return visited == num_nodes_;
}

}  // namespace vdm::net
