#include "net/graph.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace vdm::net {

NodeId Graph::add_node() {
  mark_structural();
  return static_cast<NodeId>(num_nodes_++);
}

NodeId Graph::add_nodes(std::size_t count) {
  VDM_REQUIRE(count > 0);
  const auto first = static_cast<NodeId>(num_nodes_);
  num_nodes_ += count;
  mark_structural();
  return first;
}

LinkId Graph::add_link(NodeId a, NodeId b, double delay, double loss) {
  VDM_REQUIRE(a < num_nodes_ && b < num_nodes_);
  VDM_REQUIRE_MSG(a != b, "self-loops are not physical links");
  VDM_REQUIRE(delay > 0.0);
  VDM_REQUIRE(loss >= 0.0 && loss < 1.0);
  links_.push_back(Link{a, b, delay, loss});
  mark_structural();
  return static_cast<LinkId>(links_.size() - 1);
}

void Graph::mark_structural() {
  adjacency_dirty_ = true;
  csr_patch_pending_ = false;  // the rebuild reads fresh delays anyway
  mutation_log_.clear();       // stale against the new structure
  ++version_;
  ++struct_version_;
}

std::span<const Graph::Arc> Graph::arcs(NodeId n) const {
  VDM_REQUIRE(n < num_nodes_);
  if (adjacency_dirty_) rebuild_adjacency();
  if (csr_patch_pending_) patch_csr_delays();
  return {arcs_.data() + offsets_[n], offsets_[n + 1] - offsets_[n]};
}

void Graph::rebuild_adjacency() const {
  offsets_.assign(num_nodes_ + 1, 0);
  for (const Link& l : links_) {
    ++offsets_[l.a + 1];
    ++offsets_[l.b + 1];
  }
  for (std::size_t i = 1; i <= num_nodes_; ++i) offsets_[i] += offsets_[i - 1];
  arcs_.resize(2 * links_.size());
  arc_pos_.resize(2 * links_.size());
  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  for (LinkId id = 0; id < links_.size(); ++id) {
    const Link& l = links_[id];
    arc_pos_[2 * id] = static_cast<std::uint32_t>(cursor_[l.a]);
    arc_pos_[2 * id + 1] = static_cast<std::uint32_t>(cursor_[l.b]);
    arcs_[cursor_[l.a]++] = Arc{l.b, id, l.delay};
    arcs_[cursor_[l.b]++] = Arc{l.a, id, l.delay};
  }
  adjacency_dirty_ = false;
  csr_patch_pending_ = false;
  csr_patched_seq_ = mutation_seq_;
}

void Graph::patch_csr_delays() const {
  if (mutation_seq_ - csr_patched_seq_ > mutation_log_.size()) {
    // Edits older than the log window were lost; rebuild wholesale.
    rebuild_adjacency();
    return;
  }
  const std::size_t pending =
      static_cast<std::size_t>(mutation_seq_ - csr_patched_seq_);
  for (std::size_t i = mutation_log_.size() - pending;
       i < mutation_log_.size(); ++i) {
    const LinkId l = mutation_log_[i];
    arcs_[arc_pos_[2 * l]].delay = links_[l].delay;
    arcs_[arc_pos_[2 * l + 1]].delay = links_[l].delay;
  }
  csr_patched_seq_ = mutation_seq_;
  csr_patch_pending_ = false;
}

void Graph::clear() {
  num_nodes_ = 0;
  links_.clear();
  offsets_.clear();
  arcs_.clear();
  mark_structural();
}

std::size_t Graph::capacity_bytes() const {
  return links_.capacity() * sizeof(Link) +
         offsets_.capacity() * sizeof(std::size_t) +
         arcs_.capacity() * sizeof(Arc) +
         arc_pos_.capacity() * sizeof(std::uint32_t) +
         mutation_log_.capacity() * sizeof(LinkId) +
         cursor_.capacity() * sizeof(std::size_t);
}

bool Graph::connected() const {
  std::vector<char> seen;
  std::vector<NodeId> stack;
  return connected(seen, stack);
}

bool Graph::connected(std::vector<char>& seen, std::vector<NodeId>& stack) const {
  if (num_nodes_ <= 1) return true;
  seen.assign(num_nodes_, 0);
  stack.clear();
  stack.push_back(0);
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (const Arc& arc : arcs(n)) {
      if (!seen[arc.to]) {
        seen[arc.to] = 1;
        ++visited;
        stack.push_back(arc.to);
      }
    }
  }
  return visited == num_nodes_;
}

}  // namespace vdm::net
