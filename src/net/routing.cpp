#include "net/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/require.hpp"

namespace vdm::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

const Router::Sssp& Router::tree_for(NodeId src) const {
  if (cached_version_ != graph_.version()) {
    cache_.clear();
    cached_version_ = graph_.version();
  }
  const auto it = cache_.find(src);
  if (it != cache_.end()) return it->second;

  const std::size_t n = graph_.num_nodes();
  VDM_REQUIRE(src < n);
  Sssp sssp;
  sssp.dist.assign(n, kInf);
  sssp.parent_link.assign(n, kInvalidLink);
  sssp.parent_node.assign(n, kInvalidNode);
  sssp.dist[src] = 0.0;

  using QEntry = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > sssp.dist[u]) continue;  // stale entry
    for (const Graph::Arc& arc : graph_.arcs(u)) {
      const double nd = d + arc.delay;
      if (nd < sssp.dist[arc.to]) {
        sssp.dist[arc.to] = nd;
        sssp.parent_link[arc.to] = arc.link;
        sssp.parent_node[arc.to] = u;
        pq.emplace(nd, arc.to);
      }
    }
  }
  return cache_.emplace(src, std::move(sssp)).first->second;
}

double Router::delay(NodeId src, NodeId dst) const {
  if (src == dst) return 0.0;
  return tree_for(src).dist[dst];
}

std::vector<LinkId> Router::path(NodeId src, NodeId dst) const {
  std::vector<LinkId> links;
  if (src == dst) return links;
  const Sssp& sssp = tree_for(src);
  if (sssp.dist[dst] == kInf) return links;
  for (NodeId at = dst; at != src; at = sssp.parent_node[at]) {
    links.push_back(sssp.parent_link[at]);
  }
  std::reverse(links.begin(), links.end());
  return links;
}

double Router::path_loss(NodeId src, NodeId dst) const {
  if (src == dst) return 0.0;
  double deliver = 1.0;
  for (const LinkId id : path(src, dst)) deliver *= 1.0 - graph_.link(id).loss;
  return 1.0 - deliver;
}

std::size_t Router::hop_count(NodeId src, NodeId dst) const {
  if (src == dst) return 0;
  const Sssp& sssp = tree_for(src);
  if (sssp.dist[dst] == kInf) return 0;
  std::size_t hops = 0;
  for (NodeId at = dst; at != src; at = sssp.parent_node[at]) ++hops;
  return hops;
}

void Router::clear_cache() const {
  cache_.clear();
  cached_version_ = ~0ull;
}

}  // namespace vdm::net
