#include "net/routing.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "util/require.hpp"

namespace vdm::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
/// Arity of the Dijkstra heap — same shallow-tree tradeoff as the event
/// engine's slab heap.
constexpr std::size_t kHeapArity = 4;
/// heap_pos_ sentinels: never enqueued / already settled.
constexpr std::uint32_t kUnseen = 0xffffffffu;
constexpr std::uint32_t kSettled = 0xfffffffeu;
}  // namespace

void Router::heap_sift_up(std::size_t pos) const {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kHeapArity;
    if (heap_[parent].key <= e.key) break;
    heap_[pos] = heap_[parent];
    heap_pos_[heap_[pos].node] = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = e;
  heap_pos_[e.node] = static_cast<std::uint32_t>(pos);
}

void Router::heap_sift_down(std::size_t pos) const {
  const HeapEntry e = heap_[pos];
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first = pos * kHeapArity + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kHeapArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (heap_[c].key < heap_[best].key) best = c;
    }
    if (heap_[best].key >= e.key) break;
    heap_[pos] = heap_[best];
    heap_pos_[heap_[pos].node] = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = e;
  heap_pos_[e.node] = static_cast<std::uint32_t>(pos);
}

const Router::Sssp& Router::tree_for(NodeId src) const {
  if (cached_version_ != graph_.version()) {
    ++epoch_;  // O(1) invalidation of every memoized tree
    cached_version_ = graph_.version();
  }
  const std::size_t n = graph_.num_nodes();
  VDM_REQUIRE(src < n);
  if (trees_.size() < n) {
    trees_.resize(n);
    tree_epoch_.resize(n, 0);
  }
  Sssp& sssp = trees_[src];
  if (tree_epoch_[src] == epoch_) return sssp;

  // assign() reuses the previously grown capacity, so recomputing a tree
  // after an invalidation allocates nothing in steady state.
  sssp.dist.assign(n, kInf);
  sssp.parent_link.assign(n, kInvalidLink);
  sssp.parent_node.assign(n, kInvalidNode);
  sssp.dist[src] = 0.0;

  // Dijkstra on an indexed 4-ary heap with decrease-key: every node is in
  // the heap at most once (no lazy duplicates to pop and skip), and sifts
  // touch a quarter of the levels a binary heap would. Two pruning rules
  // keep the heap small without changing any computed distance:
  //   - settled nodes (non-negative weights) can never improve, and
  //   - degree-1 nodes can never transit traffic, so their distance is
  //     final the moment their only neighbor relaxes them. Host leaves —
  //     the majority of vertices in generated topologies — therefore never
  //     enter the heap at all.
  // The relaxation arithmetic (`settled key + arc delay`, strict
  // improvement) is identical to the lazy-heap version, so distances and
  // parents are bit-for-bit unchanged.
  heap_.clear();
  heap_pos_.assign(n, kUnseen);
  heap_.push_back({0.0, src});
  heap_pos_[src] = 0;
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    heap_pos_[top.node] = kSettled;
    const HeapEntry tail = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = tail;
      heap_pos_[tail.node] = 0;
      heap_sift_down(0);
    }
    for (const Graph::Arc& arc : graph_.arcs(top.node)) {
      const double nd = top.key + arc.delay;
      if (nd < sssp.dist[arc.to]) {
        sssp.dist[arc.to] = nd;
        sssp.parent_link[arc.to] = arc.link;
        sssp.parent_node[arc.to] = top.node;
        const std::uint32_t pos = heap_pos_[arc.to];
        if (pos == kSettled) continue;       // defensive; cannot happen
        if (graph_.degree(arc.to) <= 1) continue;  // leaf: settled in place
        if (pos == kUnseen) {
          heap_.push_back({nd, arc.to});
          heap_sift_up(heap_.size() - 1);
        } else {
          heap_[pos].key = nd;
          heap_sift_up(pos);
        }
      }
    }
  }
  tree_epoch_[src] = epoch_;
  return sssp;
}

double Router::delay(NodeId src, NodeId dst) const {
  if (src == dst) return 0.0;
  return tree_for(src).dist[dst];
}

std::vector<LinkId> Router::path(NodeId src, NodeId dst) const {
  std::vector<LinkId> links;
  for_each_link(src, dst, [&links](LinkId l) { links.push_back(l); });
  return links;
}

double Router::path_loss(NodeId src, NodeId dst) const {
  return path_stats(src, dst).loss;
}

std::size_t Router::hop_count(NodeId src, NodeId dst) const {
  return path_stats(src, dst).hops;
}

Router::PathStats Router::path_stats(NodeId src, NodeId dst) const {
  if (src == dst) return {};
  const Sssp& sssp = tree_for(src);
  if (sssp.parent_node[dst] == kInvalidNode) return {kInf, 0.0, 0};
  // One walk answers delay, loss and hops together. The delivery product
  // multiplies link factors dst -> src; the forward-order product of the old
  // separate path()/path_loss() pair is identical because every factor is
  // drawn from the same link set (floating-point multiplication here is
  // order-stable to the last bit only for the common 1-2 link case, so the
  // equivalence tests compare with EXPECT_DOUBLE_EQ).
  double deliver = 1.0;
  std::uint32_t hops = 0;
  for (NodeId at = dst; at != src; at = sssp.parent_node[at]) {
    deliver *= 1.0 - graph_.link(sssp.parent_link[at]).loss;
    ++hops;
  }
  return {sssp.dist[dst], 1.0 - deliver, hops};
}

void Router::clear_cache() const {
  ++epoch_;
  cached_version_ = ~0ull;
}

std::size_t Router::cache_capacity_bytes() const {
  std::size_t bytes = trees_.capacity() * sizeof(Sssp) +
                      tree_epoch_.capacity() * sizeof(std::uint64_t) +
                      heap_.capacity() * sizeof(HeapEntry) +
                      heap_pos_.capacity() * sizeof(std::uint32_t) +
                      path_scratch_.capacity() * sizeof(LinkId);
  for (const Sssp& t : trees_) {
    bytes += t.dist.capacity() * sizeof(double) +
             t.parent_link.capacity() * sizeof(LinkId) +
             t.parent_node.capacity() * sizeof(NodeId);
  }
  return bytes;
}

}  // namespace vdm::net
