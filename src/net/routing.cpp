#include "net/routing.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "util/require.hpp"

namespace vdm::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
/// Arity of the Dijkstra heap — same shallow-tree tradeoff as the event
/// engine's slab heap.
constexpr std::size_t kHeapArity = 4;
/// heap_pos_ sentinels: never enqueued / already settled.
constexpr std::uint32_t kUnseen = 0xffffffffu;
constexpr std::uint32_t kSettled = 0xfffffffeu;
/// A repair cone touching more than this fraction of the graph falls back
/// to a full Dijkstra — past that point the bounded repair's bookkeeping
/// costs more than recomputing from scratch.
constexpr std::size_t kConeGiveUpDenom = 4;
}  // namespace

std::uint32_t Router::pos_of(NodeId n) const {
  return pos_stamp_[n] == stamp_ ? heap_pos_[n] : kUnseen;
}

void Router::set_pos(NodeId n, std::uint32_t p) const {
  heap_pos_[n] = p;
  pos_stamp_[n] = stamp_;
}

void Router::heap_sift_up(std::size_t pos) const {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kHeapArity;
    if (heap_[parent].key <= e.key) break;
    heap_[pos] = heap_[parent];
    heap_pos_[heap_[pos].node] = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = e;
  heap_pos_[e.node] = static_cast<std::uint32_t>(pos);
}

void Router::heap_sift_down(std::size_t pos) const {
  const HeapEntry e = heap_[pos];
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first = pos * kHeapArity + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kHeapArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (heap_[c].key < heap_[best].key) best = c;
    }
    if (heap_[best].key >= e.key) break;
    heap_[pos] = heap_[best];
    heap_pos_[heap_[pos].node] = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = e;
  heap_pos_[e.node] = static_cast<std::uint32_t>(pos);
}

const Router::Sssp& Router::tree_for(NodeId src) const {
  if (cached_version_ != graph_.version()) {
    if (cached_struct_version_ != graph_.struct_version()) {
      ++epoch_;  // O(1) invalidation of every memoized tree
      cached_struct_version_ = graph_.struct_version();
    }
    // A version move without a structural move is in-place delay edits:
    // the trees stay valid and catch up from the mutation log below.
    cached_version_ = graph_.version();
  }
  const std::size_t n = graph_.num_nodes();
  VDM_REQUIRE(src < n);
  if (trees_.size() < n) {
    trees_.resize(n);
    tree_epoch_.resize(n, 0);
    tree_mut_seq_.resize(n, 0);
  }
  if (heap_pos_.size() < n) {
    heap_pos_.resize(n);
    pos_stamp_.assign(n, 0);
    cone_mark_.assign(n, 0);
  }
  Sssp& sssp = trees_[src];
  if (tree_epoch_[src] != epoch_) {
    recompute_tree(src, sssp);
    tree_epoch_[src] = epoch_;
    tree_mut_seq_[src] = graph_.mutation_seq();
    return sssp;
  }
  const std::uint64_t seq = graph_.mutation_seq();
  std::uint64_t& caught_up = tree_mut_seq_[src];
  if (caught_up == seq) return sssp;
  const std::span<const LinkId> log = graph_.mutation_log();
  if (seq - caught_up > log.size()) {
    recompute_tree(src, sssp);  // the edits scrolled out of the log window
  } else {
    const std::span<const LinkId> pending =
        log.subspan(log.size() - static_cast<std::size_t>(seq - caught_up));
    if (!repair_batch(sssp, pending)) recompute_tree(src, sssp);
  }
  caught_up = seq;
  return sssp;
}

void Router::recompute_tree(NodeId src, Sssp& sssp) const {
  const std::size_t n = graph_.num_nodes();
  ++full_recomputes_;

  // assign() reuses the previously grown capacity, so recomputing a tree
  // after an invalidation allocates nothing in steady state.
  sssp.dist.assign(n, kInf);
  sssp.parent_link.assign(n, kInvalidLink);
  sssp.parent_node.assign(n, kInvalidNode);
  sssp.dist[src] = 0.0;

  // Dijkstra on an indexed 4-ary heap with decrease-key: every node is in
  // the heap at most once (no lazy duplicates to pop and skip), and sifts
  // touch a quarter of the levels a binary heap would. Two pruning rules
  // keep the heap small without changing any computed distance:
  //   - settled nodes (non-negative weights) can never improve, and
  //   - degree-1 nodes can never transit traffic, so their distance is
  //     final the moment their only neighbor relaxes them. Host leaves —
  //     the majority of vertices in generated topologies — therefore never
  //     enter the heap at all.
  // The relaxation arithmetic (`settled key + arc delay`, strict
  // improvement) is identical to the lazy-heap version, so distances and
  // parents are bit-for-bit unchanged.
  heap_.clear();
  ++stamp_;  // O(1) "assign(n, kUnseen)"
  heap_.push_back({0.0, src});
  set_pos(src, 0);
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    set_pos(top.node, kSettled);
    const HeapEntry tail = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = tail;
      heap_pos_[tail.node] = 0;
      heap_sift_down(0);
    }
    for (const Graph::Arc& arc : graph_.arcs(top.node)) {
      const double nd = top.key + arc.delay;
      if (nd < sssp.dist[arc.to]) {
        sssp.dist[arc.to] = nd;
        sssp.parent_link[arc.to] = arc.link;
        sssp.parent_node[arc.to] = top.node;
        const std::uint32_t pos = pos_of(arc.to);
        if (pos == kSettled) continue;       // defensive; cannot happen
        if (graph_.degree(arc.to) <= 1) continue;  // leaf: settled in place
        if (pos == kUnseen) {
          heap_.push_back({nd, arc.to});
          set_pos(arc.to, static_cast<std::uint32_t>(heap_.size() - 1));
          heap_sift_up(heap_.size() - 1);
        } else {
          heap_[pos].key = nd;
          heap_sift_up(pos);
        }
      }
    }
  }
}

/// Catches one memoized tree up on a batch of in-place delay edits,
/// Ramalingam–Reps-style. Returns false when the affected region is large
/// enough that a full recompute is cheaper.
///
/// The batch runs as one pass because per-edit sequential repair is unsound
/// against the final delays: a decrease wave can be blocked by a label that
/// a later increase-cone rebuild then lowers, stranding nodes beyond the
/// cone on stale sums. Instead:
///   1. Union-cone: for every edit that raised a tree edge, all tree
///      descendants of its child end — the only nodes whose distance can
///      rise — are invalidated together.
///   2. Seeds: each invalidated node gets its best candidate through a
///      still-valid neighbor; each edit that now undercuts a valid endpoint
///      (a decrease) seeds that endpoint's improvement.
///   3. One Dijkstra-flavored label-correcting pass settles everything.
///      Valid nodes only ever improve (any node needing a raise is in the
///      cone by construction). A settled node whose label later improves —
///      possible only via second-order chains through the cone — is
///      reinserted, which corrects processing order without changing the
///      final labels.
/// Every final label is the same `dist[parent] + arc.delay` nested sum a
/// fresh Dijkstra produces, so repaired trees match scratch-built ones bit
/// for bit whenever the shortest-path tree is unique (continuous random
/// delays never tie).
bool Router::repair_batch(Sssp& sssp, std::span<const LinkId> edits) const {
  const std::size_t give_up = graph_.num_nodes() / kConeGiveUpDenom;

  // 1. Collect the union cone. A neighbor is a tree child iff its parent
  //    pointer names us, so the walk costs the cone's arcs, not the graph;
  //    no link -> sources reverse index is needed, the tree is the index.
  ++cone_stamp_;
  cone_.clear();
  for (const LinkId l : edits) {
    const Link& link = graph_.link(l);
    NodeId child = kInvalidNode;
    if (sssp.parent_link[link.a] == l && sssp.parent_node[link.a] == link.b) {
      child = link.a;
    } else if (sssp.parent_link[link.b] == l &&
               sssp.parent_node[link.b] == link.a) {
      child = link.b;
    }
    if (child == kInvalidNode) continue;  // not a tree edge here
    // Memoized distances are exact nested sums, so comparing against the
    // re-derived sum classifies the edit without the pre-edit delay.
    if (sssp.dist[sssp.parent_node[child]] + link.delay <= sssp.dist[child]) {
      continue;  // unchanged or a decrease: handled by the seeds below
    }
    if (cone_mark_[child] != cone_stamp_) {
      cone_mark_[child] = cone_stamp_;
      cone_.push_back(child);
    }
  }
  for (std::size_t i = 0; i < cone_.size(); ++i) {
    if (cone_.size() > give_up) return false;  // full recompute is cheaper
    const NodeId u = cone_[i];
    for (const Graph::Arc& arc : graph_.arcs(u)) {
      if (cone_mark_[arc.to] != cone_stamp_ && sssp.parent_node[arc.to] == u) {
        cone_mark_[arc.to] = cone_stamp_;
        cone_.push_back(arc.to);
      }
    }
  }
  repair_visits_ += cone_.size();
  for (const NodeId u : cone_) {
    sssp.dist[u] = kInf;
    sssp.parent_link[u] = kInvalidLink;
    sssp.parent_node[u] = kInvalidNode;
  }

  // 2a. Boundary seeds: best still-valid neighbor per invalidated node. A
  //     leaf's only neighbor is that boundary node, so its candidate is
  //     written in place and never enters the heap — the same
  //     settle-in-place rule the fresh run applies to leaves.
  heap_.clear();
  ++stamp_;
  for (const NodeId u : cone_) {
    double best = kInf;
    LinkId best_link = kInvalidLink;
    NodeId best_parent = kInvalidNode;
    for (const Graph::Arc& arc : graph_.arcs(u)) {
      if (cone_mark_[arc.to] == cone_stamp_) continue;
      const double nd = sssp.dist[arc.to] + arc.delay;
      if (nd < best) {
        best = nd;
        best_link = arc.link;
        best_parent = arc.to;
      }
    }
    if (best == kInf) continue;
    sssp.dist[u] = best;
    sssp.parent_link[u] = best_link;
    sssp.parent_node[u] = best_parent;
    if (graph_.degree(u) <= 1) continue;
    heap_.push_back({best, u});
    set_pos(u, static_cast<std::uint32_t>(heap_.size() - 1));
    heap_sift_up(heap_.size() - 1);
  }

  // 2b. Decrease seeds: edits that now undercut a valid endpoint.
  for (const LinkId l : edits) {
    const Link& link = graph_.link(l);
    const double d = link.delay;
    for (int dir = 0; dir < 2; ++dir) {
      const NodeId from = dir == 0 ? link.a : link.b;
      const NodeId to = dir == 0 ? link.b : link.a;
      if (cone_mark_[from] == cone_stamp_ || cone_mark_[to] == cone_stamp_) {
        continue;  // invalidated ends are covered by boundary seeding
      }
      const double nd = sssp.dist[from] + d;
      if (nd >= sssp.dist[to]) continue;
      sssp.dist[to] = nd;
      sssp.parent_link[to] = l;
      sssp.parent_node[to] = from;
      ++repair_visits_;
      if (graph_.degree(to) <= 1) continue;
      const std::uint32_t pos = pos_of(to);
      if (pos == kUnseen) {
        heap_.push_back({nd, to});
        set_pos(to, static_cast<std::uint32_t>(heap_.size() - 1));
        heap_sift_up(heap_.size() - 1);
      } else {
        heap_[pos].key = nd;
        heap_sift_up(pos);
      }
    }
  }

  // 3. Settle. Relaxation is NOT restricted to the cone: improvements flow
  //    out of it (that is the second-order chain the per-edit scheme lost).
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    set_pos(top.node, kSettled);
    const HeapEntry tail = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = tail;
      heap_pos_[tail.node] = 0;
      heap_sift_down(0);
    }
    if (top.key != sssp.dist[top.node]) continue;  // reinserted better copy
    for (const Graph::Arc& arc : graph_.arcs(top.node)) {
      const double nd = top.key + arc.delay;
      if (nd < sssp.dist[arc.to]) {
        sssp.dist[arc.to] = nd;
        sssp.parent_link[arc.to] = arc.link;
        sssp.parent_node[arc.to] = top.node;
        ++repair_visits_;
        if (graph_.degree(arc.to) <= 1) continue;  // leaf: settled in place
        const std::uint32_t pos = pos_of(arc.to);
        if (pos == kUnseen || pos == kSettled) {
          heap_.push_back({nd, arc.to});
          set_pos(arc.to, static_cast<std::uint32_t>(heap_.size() - 1));
          heap_sift_up(heap_.size() - 1);
        } else {
          heap_[pos].key = nd;
          heap_sift_up(pos);
        }
      }
    }
  }
  return true;
}

double Router::delay(NodeId src, NodeId dst) const {
  if (src == dst) return 0.0;
  return tree_for(src).dist[dst];
}

std::vector<LinkId> Router::path(NodeId src, NodeId dst) const {
  std::vector<LinkId> links;
  for_each_link(src, dst, [&links](LinkId l) { links.push_back(l); });
  return links;
}

double Router::path_loss(NodeId src, NodeId dst) const {
  return path_stats(src, dst).loss;
}

std::size_t Router::hop_count(NodeId src, NodeId dst) const {
  return path_stats(src, dst).hops;
}

Router::PathStats Router::path_stats(NodeId src, NodeId dst) const {
  if (src == dst) return {};
  const Sssp& sssp = tree_for(src);
  if (sssp.parent_node[dst] == kInvalidNode) return {kInf, 0.0, 0};
  // One walk answers delay, loss and hops together. The delivery product
  // multiplies link factors dst -> src; the forward-order product of the old
  // separate path()/path_loss() pair is identical because every factor is
  // drawn from the same link set (floating-point multiplication here is
  // order-stable to the last bit only for the common 1-2 link case, so the
  // equivalence tests compare with EXPECT_DOUBLE_EQ).
  double deliver = 1.0;
  std::uint32_t hops = 0;
  for (NodeId at = dst; at != src; at = sssp.parent_node[at]) {
    deliver *= 1.0 - graph_.link(sssp.parent_link[at]).loss;
    ++hops;
  }
  return {sssp.dist[dst], 1.0 - deliver, hops};
}

void Router::clear_cache() const {
  ++epoch_;
  cached_version_ = ~0ull;
}

std::size_t Router::cache_capacity_bytes() const {
  std::size_t bytes = trees_.capacity() * sizeof(Sssp) +
                      tree_epoch_.capacity() * sizeof(std::uint64_t) +
                      heap_.capacity() * sizeof(HeapEntry) +
                      heap_pos_.capacity() * sizeof(std::uint32_t) +
                      path_scratch_.capacity() * sizeof(LinkId);
  for (const Sssp& t : trees_) {
    bytes += t.dist.capacity() * sizeof(double) +
             t.parent_link.capacity() * sizeof(LinkId) +
             t.parent_node.capacity() * sizeof(NodeId);
  }
  return bytes;
}

}  // namespace vdm::net
