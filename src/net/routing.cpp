#include "net/routing.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "util/require.hpp"

namespace vdm::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

const Router::Sssp& Router::tree_for(NodeId src) const {
  if (cached_version_ != graph_.version()) {
    ++epoch_;  // O(1) invalidation of every memoized tree
    cached_version_ = graph_.version();
  }
  const std::size_t n = graph_.num_nodes();
  VDM_REQUIRE(src < n);
  if (trees_.size() < n) {
    trees_.resize(n);
    tree_epoch_.resize(n, 0);
  }
  Sssp& sssp = trees_[src];
  if (tree_epoch_[src] == epoch_) return sssp;

  // assign() reuses the previously grown capacity, so recomputing a tree
  // after an invalidation allocates nothing in steady state.
  sssp.dist.assign(n, kInf);
  sssp.parent_link.assign(n, kInvalidLink);
  sssp.parent_node.assign(n, kInvalidNode);
  sssp.dist[src] = 0.0;

  using QEntry = std::pair<double, NodeId>;  // (distance, node)
  const auto cmp = std::greater<QEntry>{};
  heap_.clear();
  heap_.emplace_back(0.0, src);
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), cmp);
    const auto [d, u] = heap_.back();
    heap_.pop_back();
    if (d > sssp.dist[u]) continue;  // stale entry
    for (const Graph::Arc& arc : graph_.arcs(u)) {
      const double nd = d + arc.delay;
      if (nd < sssp.dist[arc.to]) {
        sssp.dist[arc.to] = nd;
        sssp.parent_link[arc.to] = arc.link;
        sssp.parent_node[arc.to] = u;
        heap_.emplace_back(nd, arc.to);
        std::push_heap(heap_.begin(), heap_.end(), cmp);
      }
    }
  }
  tree_epoch_[src] = epoch_;
  return sssp;
}

double Router::delay(NodeId src, NodeId dst) const {
  if (src == dst) return 0.0;
  return tree_for(src).dist[dst];
}

std::vector<LinkId> Router::path(NodeId src, NodeId dst) const {
  std::vector<LinkId> links;
  for_each_link(src, dst, [&links](LinkId l) { links.push_back(l); });
  return links;
}

double Router::path_loss(NodeId src, NodeId dst) const {
  return path_stats(src, dst).loss;
}

std::size_t Router::hop_count(NodeId src, NodeId dst) const {
  return path_stats(src, dst).hops;
}

Router::PathStats Router::path_stats(NodeId src, NodeId dst) const {
  if (src == dst) return {};
  const Sssp& sssp = tree_for(src);
  if (sssp.parent_node[dst] == kInvalidNode) return {kInf, 0.0, 0};
  // One walk answers delay, loss and hops together. The delivery product
  // multiplies link factors dst -> src; the forward-order product of the old
  // separate path()/path_loss() pair is identical because every factor is
  // drawn from the same link set (floating-point multiplication here is
  // order-stable to the last bit only for the common 1-2 link case, so the
  // equivalence tests compare with EXPECT_DOUBLE_EQ).
  double deliver = 1.0;
  std::uint32_t hops = 0;
  for (NodeId at = dst; at != src; at = sssp.parent_node[at]) {
    deliver *= 1.0 - graph_.link(sssp.parent_link[at]).loss;
    ++hops;
  }
  return {sssp.dist[dst], 1.0 - deliver, hops};
}

void Router::clear_cache() const {
  ++epoch_;
  cached_version_ = ~0ull;
}

}  // namespace vdm::net
