#include "core/vdm_protocol.hpp"

#include <algorithm>
#include <limits>

#include "core/directionality.hpp"
#include "overlay/session.hpp"
#include "overlay/walk.hpp"

namespace vdm::core {

using overlay::OpStats;
using overlay::Session;
using overlay::TreeWalk;
using overlay::WalkAdoption;
using overlay::WalkDecision;

namespace {

/// VDM's step policy (§3.2/§3.3): probe the node and its children, classify
/// every (node, child, newcomer) triple with the directionality rule, then
/// Case III descend > Case II splice > Case I attach > saturated fallback.
struct VdmJoinPolicy {
  const VdmConfig& config;
  VdmProtocol::CaseStats& cases;
  /// Slots the joiner can offer adopted children (fixed at walk start).
  int free_slots = 0;
  /// Case II outcome: the decided adoptions, viewing walk scratch.
  std::span<const WalkAdoption> adoptions;

  void on_start(TreeWalk&, OpStats&) {}

  TreeWalk::Action step(TreeWalk& w, OpStats& stats) {
    overlay::Membership& tree = w.session().tree();
    const net::HostId n = w.joiner();
    // "N pings S and all children of S" — concurrent probes.
    const double d_ncur = w.probe_cur_and_kids(stats);
    const std::span<const net::HostId> kids = w.kids();
    const std::span<const double> dist = w.kid_dists();

    // Classify every (cur, child, newcomer) triple.
    net::HostId best3 = net::kInvalidHost;
    double best3_dist = std::numeric_limits<double>::infinity();
    std::vector<WalkAdoption>& case2 = w.adoptions_scratch();
    case2.clear();
    for (std::size_t i = 0; i < kids.size(); ++i) {
      const double d_nc = dist[i];
      const double d_pc = tree.stored_child_distance(w.cur(), kids[i]);
      DirCase dir = classify_direction(d_ncur, d_nc, d_pc, config.epsilon_rel);
      if (dir == DirCase::kCaseII && config.case2_descend_ratio > 1.0 &&
          d_ncur > config.case2_descend_ratio * d_nc) {
        // Degenerate Case II: the newcomer is essentially at the child, not
        // between the endpoints — follow the child's direction instead.
        dir = DirCase::kCaseIII;
      }
      switch (dir) {
        case DirCase::kCaseIII:
          // Only descend into a subtree that still has an attachment point
          // for us; otherwise the search dead-ends at saturated leaves.
          if (d_nc < best3_dist && tree.subtree_has_capacity(kids[i], n)) {
            best3_dist = d_nc;
            best3 = kids[i];
          }
          break;
        case DirCase::kCaseII:
          case2.push_back({kids[i], d_nc});
          break;
        case DirCase::kCaseI:
          break;
      }
    }

    // Case III dominates Case II: continue the search from the closest
    // directional child (§3.2, Scenario III).
    if (best3 != net::kInvalidHost) {
      ++cases.case3_descents;
      return TreeWalk::Action::descend(WalkDecision::kDirectionalDescend, best3,
                                       best3_dist);
    }

    // Case II: splice in, adopting the closest Case II children the
    // joiner's remaining degree allows ("we make connections as long as
    // the new node allows"). Requires at least one free slot, otherwise
    // the joiner cannot take over any child and Case II degenerates.
    if (!case2.empty() && free_slots > 0) {
      std::sort(case2.begin(), case2.end(),
                [](const auto& a, const auto& b) { return a.dist < b.dist; });
      if (case2.size() > static_cast<std::size_t>(free_slots)) {
        case2.resize(static_cast<std::size_t>(free_slots));
      }
      ++cases.case2_splice;
      cases.case2_adoptions += case2.size();
      adoptions = std::span<const WalkAdoption>(case2);
      return TreeWalk::Action::stop(WalkDecision::kSplice, w.cur(), d_ncur);
    }

    // Case I everywhere: attach to the current node if it can take us
    // (during refinement the node's current parent counts as having room).
    if (w.can_accept(w.cur())) {
      ++cases.case1_attach;
      return TreeWalk::Action::stop(WalkDecision::kAttach, w.cur(), d_ncur);
    }

    // Otherwise the closest child with a free slot (§3.2: "it connects to
    // the closest free child"), and if every child is saturated too, keep
    // descending through the closest subtree that still has capacity.
    const TreeWalk::Action fallback = w.saturated_fallback(dist);
    if (fallback.kind == TreeWalk::Action::Kind::kStop) {
      ++cases.full_fallback_child;
    } else {
      ++cases.full_fallback_descend;
    }
    return fallback;
  }
};

/// The concurrent-join adapter: VdmJoinPolicy unchanged, plus the
/// splice-aware commit. Lives in the anonymous namespace next to the policy
/// it re-homes.
struct VdmPipeline final
    : overlay::PolicyPipeline<VdmPipeline, VdmJoinPolicy> {
  const VdmConfig& config;
  VdmProtocol::CaseStats& cases;

  VdmPipeline(const VdmConfig& cfg, VdmProtocol::CaseStats& cs)
      : config(cfg), cases(cs) {}

  VdmJoinPolicy make_policy(TreeWalk& walk) const {
    const overlay::MemberState& nm =
        walk.session().tree().member(walk.joiner());
    const int free_slots =
        nm.degree_limit - static_cast<int>(nm.children.size()) - 1;
    return VdmJoinPolicy{config, cases, free_slots, {}};
  }

  std::span<const WalkAdoption> adoptions(
      const overlay::PolicySlot& slot) const override {
    return policy_of(slot).adoptions;
  }

  bool commit(Session& s, net::HostId joiner, net::HostId parent,
              double parent_dist, bool /*parent_has_dist*/,
              std::span<const WalkAdoption> adoptions,
              OpStats& stats) override {
    overlay::Membership& tree = s.tree();
    // Re-validate the adoptions against the current tree: between this
    // walker's stop and its commit turn, other commits may have re-parented
    // (or spliced away) a candidate. Stale entries are simply dropped — two
    // splicers at the same parent with disjoint surviving adoptions both
    // succeed, since each splice funds its own slot by detaching a child.
    std::vector<WalkAdoption>& live = s.walk_scratch().adoptions;
    live.clear();
    for (const WalkAdoption& a : adoptions) {
      const overlay::MemberState& cm = tree.member(a.child);
      if (cm.alive && cm.parent == parent) live.push_back(a);
    }
    const bool has_room = tree.member(parent).has_free_degree() ||
                          tree.member(joiner).parent == parent;
    if (live.empty() && !has_room) {
      return false;  // every adoption went stale and no slot is left — retry
    }
    // From here this is apply_plan against the surviving adoptions.
    s.charge_exchange(joiner, parent, stats);
    for (const WalkAdoption& a : live) tree.detach(a.child);
    tree.attach(joiner, parent, parent_dist);
    for (const WalkAdoption& a : live) {
      tree.attach(a.child, joiner, a.dist);
      s.charge_notification(1, stats);
      s.charge_notification(
          static_cast<int>(tree.member(a.child).children.size()), stats);
    }
    stats.parent_changed = true;
    return true;
  }
};

}  // namespace

overlay::PipelineSupport* VdmProtocol::pipeline_support() {
  if (!pipeline_) {
    pipeline_ = std::make_unique<VdmPipeline>(config_, case_stats_);
  }
  return pipeline_.get();
}

VdmProtocol::JoinPlan VdmProtocol::plan_join(Session& s, net::HostId n,
                                             net::HostId start,
                                             OpStats& stats) const {
  const overlay::MemberState& nm = s.tree().member(n);
  // Slots the joiner can offer adopted children: its limit minus existing
  // children minus the parent link the attach itself will occupy (a joiner
  // is never the source, so it always ends up with an uplink).
  const int free_slots =
      nm.degree_limit - static_cast<int>(nm.children.size()) - 1;

  TreeWalk walk(s, walk_observer());
  VdmJoinPolicy policy{config_, case_stats_, free_slots, {}};
  const TreeWalk::Result found = walk.run(n, start, stats, policy);
  return JoinPlan{found.parent, found.dist, policy.adoptions};
}

void VdmProtocol::apply_plan(Session& s, net::HostId n, const JoinPlan& plan,
                             OpStats& stats) const {
  overlay::Membership& tree = s.tree();

  // Connection request/response with the chosen parent.
  s.charge_exchange(n, plan.parent, stats);

  // Case II: free the adopted children's slots first so the joiner can take
  // one of them even at a saturated parent ("If CaseII, this is not an
  // obligation" — §5.2.2 connection_request).
  for (const WalkAdoption& a : plan.adoptions) {
    tree.detach(a.child);
  }
  tree.attach(n, plan.parent, plan.parent_dist);
  for (const WalkAdoption& a : plan.adoptions) {
    tree.attach(a.child, n, a.dist);
    // parent_change to the adopted child, grand_parent_change to each of
    // its children (§5.2.2 control messages).
    s.charge_notification(1, stats);
    s.charge_notification(static_cast<int>(tree.member(a.child).children.size()),
                          stats);
  }
  stats.parent_changed = true;
}

OpStats VdmProtocol::execute_join(Session& session, net::HostId joiner,
                                  net::HostId start) {
  OpStats stats;
  const JoinPlan plan = plan_join(session, joiner, start, stats);
  apply_plan(session, joiner, plan, stats);
  return stats;
}

OpStats VdmProtocol::execute_refine(Session& session, net::HostId node) {
  OpStats stats;
  if (node == session.source()) return stats;
  overlay::Membership& tree = session.tree();
  const overlay::MemberState& m = tree.member(node);
  if (!m.alive || m.parent == net::kInvalidHost) return stats;

  // Re-run the join search from the source; switch only if it lands on a
  // different parent (§3.4).
  const JoinPlan plan = plan_join(session, node, session.source(), stats);
  if (plan.parent == m.parent) {
    // No switch — but the search just re-measured d(N,P); keep the parent's
    // stored distance fresh so later directionality classifications at P
    // use current numbers instead of the join-time measurement.
    tree.update_child_distance(m.parent, node, plan.parent_dist);
    return stats;
  }

  tree.detach(node);
  apply_plan(session, node, plan, stats);
  return stats;
}

}  // namespace vdm::core
