#include "core/vdm_protocol.hpp"

#include <algorithm>
#include <limits>

#include "core/directionality.hpp"
#include "overlay/session.hpp"
#include "util/require.hpp"

namespace vdm::core {

using overlay::OpStats;
using overlay::Session;

VdmProtocol::JoinPlan VdmProtocol::plan_join(Session& s, net::HostId n,
                                             net::HostId start,
                                             OpStats& stats) const {
  overlay::Membership& tree = s.tree();
  const overlay::MemberState& nm = tree.member(n);
  // Slots the joiner can offer adopted children: its limit minus existing
  // children minus the parent link the attach itself will occupy (a joiner
  // is never the source, so it always ends up with an uplink).
  const int free_slots =
      nm.degree_limit - static_cast<int>(nm.children.size()) - 1;

  net::HostId cur = start;
  // Restart from the source when the contacted node is ineligible or its
  // subtree has no attachment point left (e.g. a saturated degree-1 leaf
  // offered as a reconnection grandparent).
  if (!s.eligible_parent(n, cur) || !tree.subtree_has_capacity(cur, n)) {
    cur = s.source();
  }
  VDM_REQUIRE(s.eligible_parent(n, cur));

  for (;;) {
    ++stats.iterations;
    // Information request/response with the current node: children list and
    // the node's stored distances to them (§3.2 control messages).
    s.charge_exchange(n, cur, stats);

    std::vector<net::HostId> kids;
    for (const net::HostId c : tree.member(cur).children) {
      if (c != n && s.eligible_parent(n, c)) kids.push_back(c);
    }

    // "N pings S and all children of S" — concurrent probes.
    std::vector<net::HostId> targets;
    targets.reserve(kids.size() + 1);
    targets.push_back(cur);
    targets.insert(targets.end(), kids.begin(), kids.end());
    const std::vector<double> dist = s.measure_parallel(n, targets, stats);
    const double d_ncur = dist[0];

    // Classify every (cur, child, newcomer) triple.
    net::HostId best3 = net::kInvalidHost;
    double best3_dist = std::numeric_limits<double>::infinity();
    std::vector<JoinPlan::Adoption> case2;
    for (std::size_t i = 0; i < kids.size(); ++i) {
      const double d_nc = dist[i + 1];
      const double d_pc = tree.stored_child_distance(cur, kids[i]);
      DirCase dir = classify_direction(d_ncur, d_nc, d_pc, config_.epsilon_rel);
      if (dir == DirCase::kCaseII && config_.case2_descend_ratio > 1.0 &&
          d_ncur > config_.case2_descend_ratio * d_nc) {
        // Degenerate Case II: the newcomer is essentially at the child, not
        // between the endpoints — follow the child's direction instead.
        dir = DirCase::kCaseIII;
      }
      switch (dir) {
        case DirCase::kCaseIII:
          // Only descend into a subtree that still has an attachment point
          // for us; otherwise the search dead-ends at saturated leaves.
          if (d_nc < best3_dist && tree.subtree_has_capacity(kids[i], n)) {
            best3_dist = d_nc;
            best3 = kids[i];
          }
          break;
        case DirCase::kCaseII:
          case2.push_back({kids[i], d_nc});
          break;
        case DirCase::kCaseI:
          break;
      }
    }

    // Case III dominates Case II: continue the search from the closest
    // directional child (§3.2, Scenario III).
    if (best3 != net::kInvalidHost) {
      ++case_stats_.case3_descents;
      cur = best3;
      continue;
    }

    // Case II: splice in, adopting the closest Case II children the
    // joiner's remaining degree allows ("we make connections as long as
    // the new node allows"). Requires at least one free slot, otherwise
    // the joiner cannot take over any child and Case II degenerates.
    if (!case2.empty() && free_slots > 0) {
      std::sort(case2.begin(), case2.end(),
                [](const auto& a, const auto& b) { return a.dist < b.dist; });
      if (case2.size() > static_cast<std::size_t>(free_slots)) {
        case2.resize(static_cast<std::size_t>(free_slots));
      }
      ++case_stats_.case2_splice;
      case_stats_.case2_adoptions += case2.size();
      JoinPlan plan;
      plan.parent = cur;
      plan.parent_dist = d_ncur;
      plan.adoptions = std::move(case2);
      return plan;
    }

    // Case I everywhere: attach to the current node if it can take us.
    // During refinement the node's current parent counts as having room —
    // re-choosing it must not look like a full parent.
    const bool cur_has_room =
        tree.member(cur).has_free_degree() || tree.member(n).parent == cur;
    if (cur_has_room) {
      ++case_stats_.case1_attach;
      return JoinPlan{cur, d_ncur, {}};
    }

    // Otherwise the closest child with a free slot (§3.2: "it connects to
    // the closest free child")...
    net::HostId best_free = net::kInvalidHost, best_any = net::kInvalidHost;
    double best_free_d = std::numeric_limits<double>::infinity();
    double best_any_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < kids.size(); ++i) {
      const double d_nc = dist[i + 1];
      const bool has_room =
          tree.member(kids[i]).has_free_degree() || tree.member(n).parent == kids[i];
      if (has_room && d_nc < best_free_d) {
        best_free_d = d_nc;
        best_free = kids[i];
      }
      if (d_nc < best_any_d && tree.subtree_has_capacity(kids[i], n)) {
        best_any_d = d_nc;
        best_any = kids[i];
      }
    }
    if (best_free != net::kInvalidHost) {
      ++case_stats_.full_fallback_child;
      return JoinPlan{best_free, best_free_d, {}};
    }

    // ... and if every child is saturated too, keep descending through the
    // closest subtree that still has capacity (the search never enters a
    // capacity-free subtree, so one must exist here).
    VDM_REQUIRE_MSG(best_any != net::kInvalidHost,
                    "join search entered a subtree without capacity");
    ++case_stats_.full_fallback_descend;
    cur = best_any;
  }
}

void VdmProtocol::apply_plan(Session& s, net::HostId n, const JoinPlan& plan,
                             OpStats& stats) const {
  overlay::Membership& tree = s.tree();

  // Connection request/response with the chosen parent.
  s.charge_exchange(n, plan.parent, stats);

  // Case II: free the adopted children's slots first so the joiner can take
  // one of them even at a saturated parent ("If CaseII, this is not an
  // obligation" — §5.2.2 connection_request).
  for (const JoinPlan::Adoption& a : plan.adoptions) {
    tree.detach(a.child);
  }
  tree.attach(n, plan.parent, plan.parent_dist);
  for (const JoinPlan::Adoption& a : plan.adoptions) {
    tree.attach(a.child, n, a.dist);
    // parent_change to the adopted child, grand_parent_change to each of
    // its children (§5.2.2 control messages).
    s.charge_notification(1, stats);
    s.charge_notification(static_cast<int>(tree.member(a.child).children.size()),
                          stats);
  }
  stats.parent_changed = true;
}

OpStats VdmProtocol::execute_join(Session& session, net::HostId joiner,
                                  net::HostId start) {
  OpStats stats;
  const JoinPlan plan = plan_join(session, joiner, start, stats);
  apply_plan(session, joiner, plan, stats);
  return stats;
}

OpStats VdmProtocol::execute_refine(Session& session, net::HostId node) {
  OpStats stats;
  if (node == session.source()) return stats;
  overlay::Membership& tree = session.tree();
  const overlay::MemberState& m = tree.member(node);
  if (!m.alive || m.parent == net::kInvalidHost) return stats;

  // Re-run the join search from the source; switch only if it lands on a
  // different parent (§3.4).
  const JoinPlan plan = plan_join(session, node, session.source(), stats);
  if (plan.parent == m.parent) {
    // No switch — but the search just re-measured d(N,P); keep the parent's
    // stored distance fresh so later directionality classifications at P
    // use current numbers instead of the join-time measurement.
    tree.update_child_distance(m.parent, node, plan.parent_dist);
    return stats;
  }

  tree.detach(node);
  apply_plan(session, node, plan, stats);
  return stats;
}

}  // namespace vdm::core
