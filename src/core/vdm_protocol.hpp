#pragma once

#include <memory>
#include <span>

#include "overlay/protocol.hpp"
#include "overlay/walk.hpp"
#include "sim/time.hpp"

namespace vdm::core {

/// Configuration of the VDM protocol.
struct VdmConfig {
  /// Directionality margin passed to classify_direction().
  double epsilon_rel = 0.0;
  /// Case II sanity rule: the longest-side test alone also fires Case II
  /// for triples where the newcomer sits almost on top of the child
  /// (d_np ~ d_pc >> d_nc) — real RTT triples are not 1-D, §3.1.2. Splicing
  /// there parks the newcomer high in the tree on a long edge. When
  /// d_np > case2_descend_ratio * d_nc, the child is treated as a Case III
  /// direction instead (descend towards it). Disabled (0) by default — the
  /// paper's rule is the pure longest-side test; the ablation bench sweeps
  /// this knob.
  double case2_descend_ratio = 0.0;
  /// Periodic refinement (the optional VDM-R component of §3.4/§5.4.5):
  /// each member re-runs the join search from the source and switches
  /// parents if a different one is found.
  bool refinement = false;
  sim::Time refinement_period = sim::minutes(3);
};

/// Virtual Direction Multicast — the paper's contribution.
///
/// Join walks the tree from the source: at each node it probes the node and
/// its children, classifies every (node, child, newcomer) triple with the
/// directionality rule, then
///   * descends through the closest Case III child (Case III beats Case II,
///     §3.2 "If we find CaseII and CaseIII together, we continue with
///     CaseIII"),
///   * or splices in on Case II — the newcomer takes the child's slot under
///     the node and adopts every Case II child its own degree allows,
///     updating the grandchildren's grandparent pointers,
///   * or, with no directional child (Case I everywhere), attaches to the
///     node itself if it has a free slot, else to its closest child with a
///     free slot, else keeps descending through the closest child.
///
/// Reconnection is the same search started at the orphan's grandparent
/// (Session handles that), and refinement re-runs the search from the
/// source on a timer.
class VdmProtocol final : public overlay::Protocol {
 public:
  explicit VdmProtocol(const VdmConfig& config = {}) : config_(config) {}

  std::string_view name() const override { return "VDM"; }

  overlay::OpStats execute_join(overlay::Session& session, net::HostId joiner,
                                net::HostId start) override;
  overlay::OpStats execute_refine(overlay::Session& session,
                                  net::HostId node) override;

  bool wants_refinement() const override { return config_.refinement; }
  sim::Time refinement_period() const override { return config_.refinement_period; }

  /// Concurrent-join adapter: the same VdmJoinPolicy steps, plus a commit
  /// that re-validates Case II adoptions against the current tree (another
  /// walker's splice may have re-parented a candidate since the stop
  /// decision) and fails — retrying the walk — when every adoption went
  /// stale and the parent has no free slot left.
  overlay::PipelineSupport* pipeline_support() override;

  const VdmConfig& config() const { return config_; }

  /// Cumulative counts of how join searches resolved — the observability
  /// hook behind the ablation benches (which case does the work?).
  struct CaseStats {
    std::uint64_t case1_attach = 0;      ///< attached to the queried node
    std::uint64_t case2_splice = 0;      ///< spliced in, adopting children
    std::uint64_t case2_adoptions = 0;   ///< children adopted across splices
    std::uint64_t case3_descents = 0;    ///< Case III descent steps
    std::uint64_t full_fallback_child = 0;  ///< attached to closest free child
    std::uint64_t full_fallback_descend = 0;  ///< all children saturated
  };
  const CaseStats& case_stats() const { return case_stats_; }
  void reset_case_stats() { case_stats_ = CaseStats{}; }

 private:
  /// A fully decided attachment: where the joiner connects and which
  /// children it adopts (Case II). Computed without mutating the tree so
  /// the same search serves join and refinement. The adoption span views
  /// the session's walk scratch — valid until the next walk, which is long
  /// enough for apply_plan (plans never outlive their operation).
  struct JoinPlan {
    net::HostId parent = net::kInvalidHost;
    double parent_dist = 0.0;
    std::span<const overlay::WalkAdoption> adoptions;
  };

  JoinPlan plan_join(overlay::Session& session, net::HostId joiner,
                     net::HostId start, overlay::OpStats& stats) const;
  void apply_plan(overlay::Session& session, net::HostId joiner,
                  const JoinPlan& plan, overlay::OpStats& stats) const;

  VdmConfig config_;
  mutable CaseStats case_stats_;
  /// Created lazily by pipeline_support() (sequential-only runs never pay
  /// the allocation).
  std::unique_ptr<overlay::PipelineSupport> pipeline_;
};

}  // namespace vdm::core
