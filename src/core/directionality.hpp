#pragma once

namespace vdm::core {

/// Outcome of classifying a (parent P, child C, newcomer N) triple by its
/// three pairwise virtual distances — the 1-D "virtual directionality on a
/// line" abstraction of §3.1.2. The longest of the three distances decides
/// which node lies between the other two:
///
///   d(N,C) longest  ->  P between N and C  ->  Case I   (C not directional)
///   d(P,C) longest  ->  N between P and C  ->  Case II  (N splices in)
///   d(N,P) longest  ->  C between P and N  ->  Case III (descend through C)
enum class DirCase {
  kCaseI,    ///< no shared direction with this child
  kCaseII,   ///< newcomer belongs between parent and child
  kCaseIII,  ///< child lies towards the newcomer; continue the search there
};

/// Classifies one triple. `d_np` = dist(newcomer, parent), `d_nc` =
/// dist(newcomer, child), `d_pc` = dist(parent, child), all >= 0.
///
/// `rel_epsilon` is the directionality margin: the longest side must exceed
/// the runner-up by epsilon * longest to count as a clear direction;
/// near-ties degrade to Case I (measurement noise must not trigger
/// restructuring — Case II moves an existing subtree).
DirCase classify_direction(double d_np, double d_nc, double d_pc,
                           double rel_epsilon = 0.02);

}  // namespace vdm::core
