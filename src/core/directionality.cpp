#include "core/directionality.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace vdm::core {

DirCase classify_direction(double d_np, double d_nc, double d_pc,
                           double rel_epsilon) {
  VDM_REQUIRE(d_np >= 0.0 && d_nc >= 0.0 && d_pc >= 0.0);
  VDM_REQUIRE(rel_epsilon >= 0.0);
  const double longest = std::max({d_np, d_nc, d_pc});
  const double margin = rel_epsilon * longest;

  if (d_pc >= longest && d_pc > d_np + margin && d_pc > d_nc + margin) {
    return DirCase::kCaseII;
  }
  if (d_np >= longest && d_np > d_pc + margin && d_np > d_nc + margin) {
    return DirCase::kCaseIII;
  }
  // d_nc is the (possibly tied) longest: the parent separates newcomer and
  // child — or the triple is too symmetric to call a direction.
  return DirCase::kCaseI;
}

}  // namespace vdm::core
