#include "experiments/runner.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <span>
#include <utility>

#include "baselines/btp_protocol.hpp"
#include "baselines/hmtp_protocol.hpp"
#include "baselines/mst_overlay.hpp"
#include "baselines/random_protocol.hpp"
#include "core/vdm_protocol.hpp"
#include "overlay/placement.hpp"
#include "overlay/walk.hpp"
#include "net/coord_underlay.hpp"
#include "sim/simulator.hpp"
#include "topology/coord.hpp"
#include "topology/geo.hpp"
#include "topology/transit_stub.hpp"
#include "topology/waxman.hpp"
#include "util/require.hpp"

namespace vdm::experiments {


namespace {

std::size_t auto_pool(const overlay::ScenarioParams& scenario) {
  // Enough spare hosts that churn joiners never exhaust the pool: target
  // members + source + 60% slack (the paper drew 200 members from 792
  // router attachment points). Flash arrivals come on top, one host each.
  return scenario.target_members + scenario.flash_count + 1 +
         std::max<std::size_t>(8, scenario.target_members * 3 / 5);
}

topo::TransitStubParams transit_stub_params(const RunConfig& cfg) {
  topo::TransitStubParams tp;
  if (cfg.routers > 0) {
    // Scale the stub tier to approximate the requested router count
    // while keeping the paper's 4x6 transit core.
    const std::size_t transit = tp.transit_domains * tp.routers_per_transit;
    if (cfg.routers > transit) {
      const std::size_t stub_total = cfg.routers - transit;
      tp.routers_per_stub = std::max<std::size_t>(
          2, stub_total / (transit * tp.stub_domains_per_transit_router));
    }
  }
  tp.loss_max = cfg.link_loss_max;
  return tp;
}

topo::GeoParams geo_params(const RunConfig& cfg, std::size_t pool) {
  topo::GeoParams gp;
  gp.num_hosts = pool;
  gp.regions = cfg.substrate == Substrate::kGeoUs ? topo::us_regions()
                                                  : topo::world_regions();
  if (cfg.link_loss_max > 0.0) {
    gp.loss_noise = cfg.link_loss_max;
    gp.loss_max = cfg.link_loss_max;
  }
  return gp;
}

std::unique_ptr<overlay::Protocol> build_protocol(const RunConfig& cfg) {
  std::unique_ptr<overlay::Protocol> protocol;
  core::VdmConfig vc;
  vc.epsilon_rel = cfg.vdm_epsilon;
  vc.case2_descend_ratio = cfg.vdm_case2_descend_ratio;
  vc.refinement_period = cfg.vdm_refine_period;
  switch (cfg.protocol) {
    case Proto::kVdm:
      protocol = std::make_unique<core::VdmProtocol>(vc);
      break;
    case Proto::kVdmRefine:
      vc.refinement = true;
      protocol = std::make_unique<core::VdmProtocol>(vc);
      break;
    case Proto::kHmtp: {
      baselines::HmtpConfig hc;
      hc.refinement = cfg.hmtp_refinement;
      hc.refinement_period = cfg.hmtp_refine_period;
      hc.u_turn_rule = cfg.hmtp_u_turn_rule;
      hc.foster_child = cfg.hmtp_foster_child;
      protocol = std::make_unique<baselines::HmtpProtocol>(hc);
      break;
    }
    case Proto::kBtp:
      protocol = std::make_unique<baselines::BtpProtocol>();
      break;
    case Proto::kRandom:
      protocol = std::make_unique<baselines::RandomProtocol>();
      break;
  }
  VDM_REQUIRE_MSG(protocol != nullptr, "unknown protocol");
  protocol->set_walk_observer(cfg.walk_observer);
  return protocol;
}

std::unique_ptr<overlay::MetricProvider> build_metric(const RunConfig& cfg,
                                                      const sim::Simulator& clock) {
  switch (cfg.metric) {
    case Metric::kDelay:
      return std::make_unique<overlay::DelayMetric>(cfg.probe_noise);
    case Metric::kLoss:
      return std::make_unique<overlay::LossMetric>();
    case Metric::kBlend:
      return std::make_unique<overlay::BlendMetric>(0.5, 0.5);
    case Metric::kCachedDelay:
      return std::make_unique<overlay::CachedMetric>(
          std::make_unique<overlay::DelayMetric>(cfg.probe_noise), clock,
          cfg.metric_cache_ttl);
    case Metric::kCachedLoss:
      return std::make_unique<overlay::CachedMetric>(
          std::make_unique<overlay::LossMetric>(), clock, cfg.metric_cache_ttl);
  }
  VDM_REQUIRE_MSG(false, "unknown metric");
  return nullptr;
}

}  // namespace

struct RunScratch::Impl {
  // Router-graph substrates: the underlay keeps the graph, router caches and
  // host list between runs; release()/rebind() shuttles the graph buffers
  // through the topology generators, which rebuild them in place.
  std::optional<net::GraphUnderlay> graph_underlay;
  topo::TransitStubTopology ts;
  topo::WaxmanTopology wax;
  std::vector<net::NodeId> hosts;
  std::vector<net::NodeId> all_routers;

  // Matrix substrates: the delay/loss matrices shuttle the same way.
  std::optional<net::MatrixUnderlay> matrix_underlay;
  std::vector<topo::GeoHost> geo_hosts;
  std::vector<double> geo_delay;
  std::vector<double> geo_loss;

  // Coordinate substrates: two coordinate arrays, O(N) total — what lets
  // run_once reach 100k+ hosts without an O(N^2) delay matrix.
  std::optional<net::CoordUnderlay> coord_underlay;
  std::vector<double> coord_x;
  std::vector<double> coord_y;

  metrics::CollectorScratch collector;

  /// The event queue itself: reset() between runs keeps the slab/heap
  /// capacity a previous run grew (simulator.hpp).
  sim::Simulator simulator;

  /// Scenario-driver pool buffers (available hosts, membership list).
  overlay::ScenarioScratch scenario;

  /// Warm placement index (grid cells / landmark ring), swapped into each
  /// run's Session; null until the first locating/concurrent run.
  std::unique_ptr<overlay::PlacementIndex> placement;

  /// Warm Membership (member slots, children capacity, flood arrays),
  /// ping-ponged into each run's Session via swap_tree_storage; null until
  /// the first run.
  std::unique_ptr<overlay::Membership> tree;

  /// Warm tree-walk buffers, swapped into each run's Session for its
  /// lifetime (overlay/walk.hpp); null until the first run.
  std::unique_ptr<overlay::WalkScratch> walk;

  /// Warm Session working buffers (flood shards, chunk stack, probe arrays,
  /// orphan list, timing-record accumulators), swapped into each run's
  /// Session for its lifetime.
  overlay::Session::Scratch session;

  /// Prim working set for the end-of-run MST ratio.
  topo::MstScratch mst;

  /// Cached protocol / metric objects, rebuilt only when the config fields
  /// that shape them change — the steady-state bench loop (identical config
  /// every iteration) reuses them. Protocols carry no behavior-affecting
  /// run state (their case counters are documented as cumulative), so reuse
  /// cannot perturb results. CachedMetric is deliberately NOT cached: its
  /// time-stamped measurement cache must not survive a simulator reset.
  struct ProtocolKey {
    Proto protocol;
    double vdm_epsilon, vdm_case2_descend_ratio;
    sim::Time vdm_refine_period;
    bool hmtp_refinement;
    sim::Time hmtp_refine_period;
    bool hmtp_u_turn_rule, hmtp_foster_child;
    bool operator==(const ProtocolKey&) const = default;
  };
  std::optional<ProtocolKey> protocol_key;
  std::unique_ptr<overlay::Protocol> protocol;

  struct MetricKey {
    Metric metric;
    double probe_noise;
    bool operator==(const MetricKey&) const = default;
  };
  std::optional<MetricKey> metric_key;
  std::unique_ptr<overlay::MetricProvider> metric;

  std::uint64_t grow_events = 0;
  std::size_t high_water = 0;

  std::size_t capacity_bytes() const {
    std::size_t bytes = collector.capacity_bytes();
    bytes += simulator.capacity_bytes();
    bytes += scenario.capacity_bytes();
    bytes += session.capacity_bytes();
    bytes += mst.capacity_bytes();
    if (placement) bytes += placement->capacity_bytes();
    if (walk) bytes += walk->capacity_bytes();
    if (tree) bytes += tree->capacity_bytes();
    if (graph_underlay) bytes += graph_underlay->arena_capacity_bytes();
    if (matrix_underlay) bytes += matrix_underlay->arena_capacity_bytes();
    if (coord_underlay) bytes += coord_underlay->arena_capacity_bytes();
    bytes += (coord_x.capacity() + coord_y.capacity()) * sizeof(double);
    bytes += ts.graph.capacity_bytes() + wax.graph.capacity_bytes();
    bytes += (ts.transit_routers.capacity() + ts.stub_routers.capacity() +
              ts.order_scratch.capacity() + ts.stub_scratch.capacity() +
              hosts.capacity() + all_routers.capacity()) *
             sizeof(net::NodeId);
    bytes += ts.transit_scratch.capacity() * sizeof(std::vector<net::NodeId>);
    for (const std::vector<net::NodeId>& d : ts.transit_scratch) {
      bytes += d.capacity() * sizeof(net::NodeId);
    }
    bytes += ts.stub_domain_of.capacity() * sizeof(std::uint32_t);
    bytes += wax.coords.capacity() * sizeof(std::pair<double, double>);
    bytes += geo_hosts.capacity() * sizeof(topo::GeoHost);
    bytes += (geo_delay.capacity() + geo_loss.capacity()) * sizeof(double);
    return bytes;
  }
};

RunScratch::RunScratch() : impl_(std::make_unique<Impl>()) {}
RunScratch::~RunScratch() = default;
RunScratch::RunScratch(RunScratch&&) noexcept = default;
RunScratch& RunScratch::operator=(RunScratch&&) noexcept = default;

std::uint64_t RunScratch::grow_events() const { return impl_->grow_events; }
std::size_t RunScratch::capacity_bytes() const { return impl_->capacity_bytes(); }

namespace {

/// Builds (or rebuilds in place) the run's substrate inside the scratch and
/// returns a pointer into it. Same rng draws as the value-returning
/// generator compositions, so results match the scratch-free path bit for
/// bit.
net::Underlay* build_underlay(const RunConfig& cfg, std::size_t pool,
                              util::Rng& rng, RunScratch::Impl& s) {
  switch (cfg.substrate) {
    case Substrate::kTransitStub: {
      const topo::TransitStubParams tp = transit_stub_params(cfg);
      topo::HostAttachment hp;
      hp.num_hosts = pool;
      hp.loss_max = 0.0;  // loss lives on router links, as in Chapter 4
      if (s.graph_underlay) s.graph_underlay->release(s.ts.graph, s.hosts);
      topo::make_transit_stub(tp, rng, s.ts);
      topo::attach_hosts_into(s.ts.graph, s.ts.stub_routers, hp, rng, s.hosts);
      if (s.graph_underlay) {
        s.graph_underlay->rebind(std::move(s.ts.graph), std::move(s.hosts));
      } else {
        s.graph_underlay.emplace(std::move(s.ts.graph), std::move(s.hosts));
      }
      return &*s.graph_underlay;
    }
    case Substrate::kWaxman: {
      topo::WaxmanParams wp;
      if (cfg.routers > 0) wp.num_routers = cfg.routers;
      wp.loss_max = cfg.link_loss_max;
      if (s.graph_underlay) s.graph_underlay->release(s.wax.graph, s.hosts);
      topo::make_waxman(wp, rng, s.wax);
      s.all_routers.clear();
      s.all_routers.reserve(s.wax.graph.num_nodes());
      for (net::NodeId v = 0; v < s.wax.graph.num_nodes(); ++v) {
        s.all_routers.push_back(v);
      }
      topo::HostAttachment hp;
      hp.num_hosts = pool;
      topo::attach_hosts_into(s.wax.graph, s.all_routers, hp, rng, s.hosts);
      if (s.graph_underlay) {
        s.graph_underlay->rebind(std::move(s.wax.graph), std::move(s.hosts));
      } else {
        s.graph_underlay.emplace(std::move(s.wax.graph), std::move(s.hosts));
      }
      return &*s.graph_underlay;
    }
    case Substrate::kGeoUs:
    case Substrate::kGeoWorld: {
      const topo::GeoParams gp = geo_params(cfg, pool);
      if (s.matrix_underlay) s.matrix_underlay->release(s.geo_delay, s.geo_loss);
      topo::make_geo_into(gp, rng, s.geo_hosts, s.geo_delay, s.geo_loss);
      if (s.matrix_underlay) {
        s.matrix_underlay->rebind(pool, std::move(s.geo_delay),
                                  std::move(s.geo_loss));
      } else {
        s.matrix_underlay.emplace(pool, std::move(s.geo_delay),
                                  std::move(s.geo_loss));
      }
      return &*s.matrix_underlay;
    }
    case Substrate::kCoordUs:
    case Substrate::kCoordWorld:
    case Substrate::kCoordPlane: {
      topo::CoordParams cp;
      cp.num_hosts = pool;
      if (cfg.substrate == Substrate::kCoordPlane) {
        cp.space = topo::CoordSpace::kPlane;
      } else {
        cp.space = topo::CoordSpace::kGeo;
        cp.regions = cfg.substrate == Substrate::kCoordUs
                         ? topo::us_regions()
                         : topo::world_regions();
      }
      net::CoordUnderlay::Params up;
      up.space = cp.space == topo::CoordSpace::kGeo
                     ? net::CoordUnderlay::Space::kSpherical
                     : net::CoordUnderlay::Space::kEuclidean;
      // Coordinate delays are deterministic, so loss is the one knob left:
      // a uniform per-pair drop probability.
      up.loss = cfg.link_loss_max;
      if (s.coord_underlay) s.coord_underlay->release(s.coord_x, s.coord_y);
      topo::make_coord_into(cp, rng, s.coord_x, s.coord_y);
      if (s.coord_underlay) {
        s.coord_underlay->rebind(up, std::move(s.coord_x), std::move(s.coord_y));
      } else {
        s.coord_underlay.emplace(up, std::move(s.coord_x), std::move(s.coord_y));
      }
      return &*s.coord_underlay;
    }
  }
  VDM_REQUIRE_MSG(false, "unknown substrate");
  return nullptr;
}

/// Returns the arena's protocol object, rebuilding it only when the config
/// fields it is constructed from changed since the previous run.
overlay::Protocol& cached_protocol(RunScratch::Impl& s, const RunConfig& cfg) {
  const RunScratch::Impl::ProtocolKey key{
      cfg.protocol,
      cfg.vdm_epsilon,
      cfg.vdm_case2_descend_ratio,
      cfg.vdm_refine_period,
      cfg.hmtp_refinement,
      cfg.hmtp_refine_period,
      cfg.hmtp_u_turn_rule,
      cfg.hmtp_foster_child};
  if (!s.protocol || s.protocol_key != key) {
    s.protocol = build_protocol(cfg);
    s.protocol_key = key;
  }
  // A per-run hook, not a construction parameter — refresh on cache hits.
  s.protocol->set_walk_observer(cfg.walk_observer);
  return *s.protocol;
}

/// Same for the metric provider. The time-stamped CachedMetric variants are
/// always rebuilt: their measurement cache must not survive the simulator
/// reset (entries stamped by a previous run would read as fresh).
overlay::MetricProvider& cached_metric(RunScratch::Impl& s, const RunConfig& cfg,
                                       const sim::Simulator& clock) {
  if (cfg.metric == Metric::kCachedDelay || cfg.metric == Metric::kCachedLoss) {
    s.metric = build_metric(cfg, clock);
    s.metric_key.reset();
    return *s.metric;
  }
  const RunScratch::Impl::MetricKey key{cfg.metric, cfg.probe_noise};
  if (!s.metric || s.metric_key != key) {
    s.metric = build_metric(cfg, clock);
    s.metric_key = key;
  }
  return *s.metric;
}

}  // namespace

void workload_events(const RunConfig& config,
                     std::vector<overlay::WorkloadEvent>& out) {
  if (config.workload.kind == overlay::WorkloadKind::kTrace) {
    overlay::load_trace_file(config.workload.trace_path, out);
    return;
  }
  // Mirror run_once exactly: same seed derivation (scenario stream 2), same
  // pool size, same source host, so the returned list is the one a run of
  // this config executes.
  util::Rng root(config.seed);
  util::Rng scenario_rng = root.split(2);
  const std::size_t pool =
      config.host_pool > 0 ? config.host_pool : auto_pool(config.scenario);
  overlay::generate_workload(config.scenario, config.workload, pool,
                             /*source=*/0, scenario_rng, out);
}

RunResult run_once(const RunConfig& config) {
  RunScratch scratch;
  return run_once(config, scratch);
}

RunResult run_once(const RunConfig& config, RunScratch& scratch) {
  util::Rng root(config.seed);
  util::Rng topo_rng = root.split(1);
  util::Rng scenario_rng = root.split(2);
  util::Rng session_rng = root.split(3);

  const std::size_t pool =
      config.host_pool > 0 ? config.host_pool : auto_pool(config.scenario);
  VDM_REQUIRE(pool > config.scenario.target_members);

  net::Underlay* underlay = build_underlay(config, pool, topo_rng, *scratch.impl_);
  overlay::Protocol& protocol = cached_protocol(*scratch.impl_, config);

  sim::Simulator& simulator = scratch.impl_->simulator;
  simulator.reset();  // keep slab/heap capacity, drop any previous run's state
  overlay::MetricProvider& metric = cached_metric(*scratch.impl_, config, simulator);
  overlay::SessionParams sp = config.session;
  sp.source = 0;
  overlay::Session session(simulator, *underlay, protocol, metric, sp, session_rng);
  session.swap_walk_scratch(scratch.impl_->walk);
  session.swap_scratch(scratch.impl_->session);
  // Adopt the arena's warm tree (member slots, children capacity, flood
  // arrays survive between runs); swapped back after the final metrics read.
  session.swap_tree_storage(scratch.impl_->tree);
  // Warm placement index (grid cells / landmark ring) for locating and
  // concurrent join modes; unused (and unallocated) in sequential runs.
  session.swap_placement_index(scratch.impl_->placement);
  metrics::Collector collector(session, scratch.impl_->collector);
  collector.set_threads(sp.threads);
  double metrics_secs = 0.0;  // --profile: wall clock of the capture sweeps
  {
    const overlay::WorkloadKind wk = config.workload.kind;
    if (wk != overlay::WorkloadKind::kSlots) {
      // Fill the event list before the driver exists: generation consumes
      // scenario_rng, and the driver draws nothing in trace mode, so a
      // replayed trace reproduces the generating run bit for bit.
      std::vector<overlay::WorkloadEvent>& events =
          scratch.impl_->scenario.events;
      if (wk == overlay::WorkloadKind::kTrace) {
        overlay::load_trace_file(config.workload.trace_path, events);
      } else {
        overlay::generate_workload(config.scenario, config.workload, pool,
                                   sp.source, scenario_rng, events);
      }
    }
    overlay::ScenarioDriver driver(session, config.scenario, scenario_rng,
                                   &scratch.impl_->scenario);
    // Two 8-byte captures on purpose: MeasureFn is a std::function, and a
    // third capture would spill the lambda past the small-buffer limit —
    // one heap allocation per run, which the zero-alloc arena contract
    // (tests/test_alloc_budget.cpp) forbids.
    double* const metrics_sink = sp.profile ? &metrics_secs : nullptr;
    const auto measure = [&collector, metrics_sink](sim::Time at) {
      if (metrics_sink == nullptr) {
        collector.capture(at);
        return;
      }
      const auto t0 = std::chrono::steady_clock::now();
      collector.capture(at);
      *metrics_sink +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    };
    if (wk == overlay::WorkloadKind::kSlots) {
      driver.run(measure);
    } else {
      driver.run_trace(scratch.impl_->scenario.events, measure);
    }
  }  // the driver's destructor returns the pool buffers to the arena
  // Return the (now warm) walk buffers to the arena before the end-of-run
  // capacity accounting below.
  session.swap_walk_scratch(scratch.impl_->walk);
  session.swap_placement_index(scratch.impl_->placement);
  session.swap_scratch(scratch.impl_->session);

  const std::size_t skip =
      std::min(config.epoch_skip, collector.samples().empty()
                                      ? std::size_t{0}
                                      : collector.samples().size() - 1);
  RunResult r;
  r.stress = collector.mean_stress(skip);
  r.stress_max = collector.mean_of(
      [](const metrics::EpochSample& e) { return e.tree.stress_max; }, skip);
  r.stretch = collector.mean_stretch(skip);
  r.stretch_leaf = collector.mean_of(
      [](const metrics::EpochSample& e) { return e.tree.stretch_leaf_avg; }, skip);
  r.stretch_max = collector.mean_of(
      [](const metrics::EpochSample& e) { return e.tree.stretch_max; }, skip);
  r.stretch_min = collector.mean_of(
      [](const metrics::EpochSample& e) { return e.tree.stretch_min; }, skip);
  r.hopcount = collector.mean_hopcount(skip);
  r.hop_leaf = collector.mean_of(
      [](const metrics::EpochSample& e) { return e.tree.hop_leaf_avg; }, skip);
  r.hop_max = collector.mean_of(
      [](const metrics::EpochSample& e) { return e.tree.hop_max; }, skip);
  r.loss = collector.mean_loss(skip);
  r.overhead = collector.mean_overhead(skip);
  r.overhead_per_chunk = collector.mean_overhead_per_chunk(skip);
  r.network_usage = collector.mean_network_usage(skip);

  const metrics::Collector::EventTimingStats startups = collector.startup_stats();
  const metrics::Collector::EventTimingStats reconnects =
      collector.reconnect_stats();
  r.startup_avg = startups.avg;
  r.startup_max = startups.max;
  r.startup_p50 = startups.p50;
  r.startup_p99 = startups.p99;
  if (session.join_cohort_span() > 0.0) {
    r.join_rate = static_cast<double>(session.join_cohort_size()) /
                  session.join_cohort_span();
  }
  r.reconnect_avg = reconnects.avg;
  r.reconnect_max = reconnects.max;
  const metrics::Collector::EventTimingStats detections =
      collector.detection_stats();
  const metrics::Collector::EventTimingStats outages = collector.outage_stats();
  r.detection_avg = detections.avg;
  r.detection_max = detections.max;
  r.outage_avg = outages.avg;
  r.outage_max = outages.max;

  r.mst_ratio = config.compute_mst_ratio
                    ? baselines::mst_ratio(session.tree(), session.source(),
                                           *underlay, scratch.impl_->mst)
                    : 1.0;
  r.final_members = session.tree().alive_count();
  r.parallel_floods = session.totals().parallel_floods;
  r.parallel_probe_batches = session.totals().parallel_probe_batches;
  r.profile_join_secs = session.profile().join_secs;
  r.profile_refine_secs = session.profile().refine_secs;
  r.profile_flood_secs = session.profile().flood_secs;
  r.profile_metrics_secs = metrics_secs;
  if (config.keep_epochs) {
    const std::span<const metrics::EpochSample> epochs = collector.samples();
    r.epochs.assign(epochs.begin(), epochs.end());
  }
  if (config.keep_trajectory) {
    r.trajectory.reserve(collector.samples().size());
    for (const metrics::EpochSample& e : collector.samples()) {
      TrajectoryPoint p;
      p.at = e.at;
      p.continuity = 1.0 - e.loss_rate;
      p.overhead = e.overhead;
      p.members = e.members;
      if (!e.outage_times.empty()) {
        double sum = 0.0;
        for (const double d : e.outage_times) sum += d;
        p.outage = sum / static_cast<double>(e.outage_times.size());
      }
      r.trajectory.push_back(p);
    }
  }
  // Final metrics are read; return the warm tree to the arena so its
  // capacity survives into the next run (and is counted below).
  session.swap_tree_storage(scratch.impl_->tree);

  // Arena-growth accounting: a run that ends with more reserved bytes than
  // any run before it grew some buffer. Steady-state sweeps (same-shaped
  // configs on one worker) must not move this counter after their first run.
  const std::size_t cap = scratch.impl_->capacity_bytes();
  if (cap > scratch.impl_->high_water) {
    ++scratch.impl_->grow_events;
    scratch.impl_->high_water = cap;
  }
  return r;
}

std::size_t default_seeds(std::size_t fast, std::size_t full) {
  if (const char* env = std::getenv("VDM_SEEDS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  if (const char* env = std::getenv("VDM_FULL")) {
    if (env[0] == '1') return full;
  }
  return fast;
}

}  // namespace vdm::experiments
