#include "experiments/runner.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "baselines/btp_protocol.hpp"
#include "baselines/hmtp_protocol.hpp"
#include "baselines/mst_overlay.hpp"
#include "baselines/random_protocol.hpp"
#include "core/vdm_protocol.hpp"
#include "sim/simulator.hpp"
#include "topology/geo.hpp"
#include "topology/transit_stub.hpp"
#include "topology/waxman.hpp"
#include "util/require.hpp"

namespace vdm::experiments {

namespace {

std::size_t auto_pool(const overlay::ScenarioParams& scenario) {
  // Enough spare hosts that churn joiners never exhaust the pool: target
  // members + source + 60% slack (the paper drew 200 members from 792
  // router attachment points).
  return scenario.target_members + 1 +
         std::max<std::size_t>(8, scenario.target_members * 3 / 5);
}

std::unique_ptr<net::Underlay> build_underlay(const RunConfig& cfg,
                                              std::size_t pool, util::Rng& rng) {
  switch (cfg.substrate) {
    case Substrate::kTransitStub: {
      topo::TransitStubParams tp;
      if (cfg.routers > 0) {
        // Scale the stub tier to approximate the requested router count
        // while keeping the paper's 4x6 transit core.
        const std::size_t transit = tp.transit_domains * tp.routers_per_transit;
        if (cfg.routers > transit) {
          const std::size_t stub_total = cfg.routers - transit;
          tp.routers_per_stub = std::max<std::size_t>(
              2, stub_total / (transit * tp.stub_domains_per_transit_router));
        }
      }
      tp.loss_max = cfg.link_loss_max;
      topo::HostAttachment hp;
      hp.num_hosts = pool;
      hp.loss_max = 0.0;  // loss lives on router links, as in Chapter 4
      return std::make_unique<net::GraphUnderlay>(
          topo::make_transit_stub_underlay(tp, hp, rng));
    }
    case Substrate::kWaxman: {
      topo::WaxmanParams wp;
      if (cfg.routers > 0) wp.num_routers = cfg.routers;
      wp.loss_max = cfg.link_loss_max;
      topo::WaxmanTopology wt = topo::make_waxman(wp, rng);
      std::vector<net::NodeId> all_routers;
      all_routers.reserve(wt.graph.num_nodes());
      for (net::NodeId v = 0; v < wt.graph.num_nodes(); ++v) all_routers.push_back(v);
      topo::HostAttachment hp;
      hp.num_hosts = pool;
      return std::make_unique<net::GraphUnderlay>(
          topo::attach_hosts(std::move(wt.graph), all_routers, hp, rng));
    }
    case Substrate::kGeoUs:
    case Substrate::kGeoWorld: {
      topo::GeoParams gp;
      gp.num_hosts = pool;
      gp.regions = cfg.substrate == Substrate::kGeoUs ? topo::us_regions()
                                                      : topo::world_regions();
      if (cfg.link_loss_max > 0.0) {
        gp.loss_noise = cfg.link_loss_max;
        gp.loss_max = cfg.link_loss_max;
      }
      topo::GeoTopology gt = topo::make_geo(gp, rng);
      return std::make_unique<net::MatrixUnderlay>(std::move(gt.underlay));
    }
  }
  VDM_REQUIRE_MSG(false, "unknown substrate");
  return nullptr;
}

std::unique_ptr<overlay::Protocol> build_protocol(const RunConfig& cfg) {
  core::VdmConfig vc;
  vc.epsilon_rel = cfg.vdm_epsilon;
  vc.case2_descend_ratio = cfg.vdm_case2_descend_ratio;
  vc.refinement_period = cfg.vdm_refine_period;
  switch (cfg.protocol) {
    case Proto::kVdm:
      return std::make_unique<core::VdmProtocol>(vc);
    case Proto::kVdmRefine:
      vc.refinement = true;
      return std::make_unique<core::VdmProtocol>(vc);
    case Proto::kHmtp: {
      baselines::HmtpConfig hc;
      hc.refinement = cfg.hmtp_refinement;
      hc.refinement_period = cfg.hmtp_refine_period;
      hc.u_turn_rule = cfg.hmtp_u_turn_rule;
      hc.foster_child = cfg.hmtp_foster_child;
      return std::make_unique<baselines::HmtpProtocol>(hc);
    }
    case Proto::kBtp:
      return std::make_unique<baselines::BtpProtocol>();
    case Proto::kRandom:
      return std::make_unique<baselines::RandomProtocol>();
  }
  VDM_REQUIRE_MSG(false, "unknown protocol");
  return nullptr;
}

std::unique_ptr<overlay::MetricProvider> build_metric(const RunConfig& cfg,
                                                      const sim::Simulator& clock) {
  switch (cfg.metric) {
    case Metric::kDelay:
      return std::make_unique<overlay::DelayMetric>(cfg.probe_noise);
    case Metric::kLoss:
      return std::make_unique<overlay::LossMetric>();
    case Metric::kBlend:
      return std::make_unique<overlay::BlendMetric>(0.5, 0.5);
    case Metric::kCachedDelay:
      return std::make_unique<overlay::CachedMetric>(
          std::make_unique<overlay::DelayMetric>(cfg.probe_noise), clock,
          cfg.metric_cache_ttl);
    case Metric::kCachedLoss:
      return std::make_unique<overlay::CachedMetric>(
          std::make_unique<overlay::LossMetric>(), clock, cfg.metric_cache_ttl);
  }
  VDM_REQUIRE_MSG(false, "unknown metric");
  return nullptr;
}

double mean_or_zero(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double max_or_zero(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, x);
  return m;
}

}  // namespace

RunResult run_once(const RunConfig& config) {
  util::Rng root(config.seed);
  util::Rng topo_rng = root.split(1);
  util::Rng scenario_rng = root.split(2);
  util::Rng session_rng = root.split(3);

  const std::size_t pool =
      config.host_pool > 0 ? config.host_pool : auto_pool(config.scenario);
  VDM_REQUIRE(pool > config.scenario.target_members);

  const std::unique_ptr<net::Underlay> underlay = build_underlay(config, pool, topo_rng);
  const std::unique_ptr<overlay::Protocol> protocol = build_protocol(config);

  sim::Simulator simulator;
  const std::unique_ptr<overlay::MetricProvider> metric = build_metric(config, simulator);
  overlay::SessionParams sp = config.session;
  sp.source = 0;
  overlay::Session session(simulator, *underlay, *protocol, *metric, sp, session_rng);
  metrics::Collector collector(session);
  overlay::ScenarioDriver driver(session, config.scenario, scenario_rng);
  driver.run([&](sim::Time at) { collector.capture(at); });

  const std::size_t skip =
      std::min(config.epoch_skip, collector.samples().empty()
                                      ? std::size_t{0}
                                      : collector.samples().size() - 1);
  RunResult r;
  r.stress = collector.mean_stress(skip);
  r.stress_max = collector.mean_of(
      [](const metrics::EpochSample& e) { return e.tree.stress_max; }, skip);
  r.stretch = collector.mean_stretch(skip);
  r.stretch_leaf = collector.mean_of(
      [](const metrics::EpochSample& e) { return e.tree.stretch_leaf_avg; }, skip);
  r.stretch_max = collector.mean_of(
      [](const metrics::EpochSample& e) { return e.tree.stretch_max; }, skip);
  r.stretch_min = collector.mean_of(
      [](const metrics::EpochSample& e) { return e.tree.stretch_min; }, skip);
  r.hopcount = collector.mean_hopcount(skip);
  r.hop_leaf = collector.mean_of(
      [](const metrics::EpochSample& e) { return e.tree.hop_leaf_avg; }, skip);
  r.hop_max = collector.mean_of(
      [](const metrics::EpochSample& e) { return e.tree.hop_max; }, skip);
  r.loss = collector.mean_loss(skip);
  r.overhead = collector.mean_overhead(skip);
  r.overhead_per_chunk = collector.mean_overhead_per_chunk(skip);
  r.network_usage = collector.mean_network_usage(skip);

  const std::vector<double> startups = collector.all_startup_times();
  const std::vector<double> reconnects = collector.all_reconnect_times();
  r.startup_avg = mean_or_zero(startups);
  r.startup_max = max_or_zero(startups);
  r.reconnect_avg = mean_or_zero(reconnects);
  r.reconnect_max = max_or_zero(reconnects);
  const std::vector<double> detections = collector.all_detection_times();
  const std::vector<double> outages = collector.all_outage_times();
  r.detection_avg = mean_or_zero(detections);
  r.detection_max = max_or_zero(detections);
  r.outage_avg = mean_or_zero(outages);
  r.outage_max = max_or_zero(outages);

  r.mst_ratio = baselines::mst_ratio(session.tree(), session.source(), *underlay);
  r.final_members = session.tree().alive_members().size();
  if (config.keep_epochs) r.epochs = collector.samples();
  return r;
}

AggregateResult run_many(const RunConfig& config, std::size_t num_seeds,
                         std::size_t threads, double confidence) {
  VDM_REQUIRE(num_seeds >= 1);
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, num_seeds);

  std::vector<RunResult> runs(num_seeds);
  std::atomic<std::size_t> next{0};
  // An exception escaping a worker thread would call std::terminate; keep
  // the first one and rethrow it on the calling thread after join().
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= num_seeds) return;
      try {
        RunConfig cfg = config;
        cfg.seed = config.seed + i;
        runs[i] = run_once(cfg);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        next.store(num_seeds);  // drain remaining work; results are moot
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);

  auto summarize_field = [&](double RunResult::* field) {
    std::vector<double> v;
    v.reserve(runs.size());
    for (const RunResult& r : runs) v.push_back(r.*field);
    return util::summarize(v, confidence);
  };

  AggregateResult agg;
  agg.stress = summarize_field(&RunResult::stress);
  agg.stretch = summarize_field(&RunResult::stretch);
  agg.stretch_leaf = summarize_field(&RunResult::stretch_leaf);
  agg.stretch_max = summarize_field(&RunResult::stretch_max);
  agg.hopcount = summarize_field(&RunResult::hopcount);
  agg.hop_leaf = summarize_field(&RunResult::hop_leaf);
  agg.hop_max = summarize_field(&RunResult::hop_max);
  agg.loss = summarize_field(&RunResult::loss);
  agg.overhead = summarize_field(&RunResult::overhead);
  agg.overhead_per_chunk = summarize_field(&RunResult::overhead_per_chunk);
  agg.network_usage = summarize_field(&RunResult::network_usage);
  agg.startup_avg = summarize_field(&RunResult::startup_avg);
  agg.startup_max = summarize_field(&RunResult::startup_max);
  agg.reconnect_avg = summarize_field(&RunResult::reconnect_avg);
  agg.reconnect_max = summarize_field(&RunResult::reconnect_max);
  agg.detection_avg = summarize_field(&RunResult::detection_avg);
  agg.detection_max = summarize_field(&RunResult::detection_max);
  agg.outage_avg = summarize_field(&RunResult::outage_avg);
  agg.outage_max = summarize_field(&RunResult::outage_max);
  agg.mst_ratio = summarize_field(&RunResult::mst_ratio);
  agg.runs = std::move(runs);
  return agg;
}

std::size_t default_seeds(std::size_t fast, std::size_t full) {
  if (const char* env = std::getenv("VDM_SEEDS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  if (const char* env = std::getenv("VDM_FULL")) {
    if (env[0] == '1') return full;
  }
  return fast;
}

}  // namespace vdm::experiments
