#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "metrics/collector.hpp"
#include "overlay/scenario.hpp"
#include "overlay/session.hpp"
#include "overlay/workload.hpp"
#include "util/stats.hpp"

namespace vdm::experiments {

/// Which substrate a run simulates on.
enum class Substrate {
  kTransitStub,  ///< GT-ITM-style router graph (Chapter 3/4 setting)
  kWaxman,       ///< flat Waxman router graph (robustness cross-check)
  kGeoUs,        ///< PlanetLab-like latency space, US-only pool (Chapter 5)
  kGeoWorld,     ///< PlanetLab-like latency space, world-wide pool
  kCoordUs,      ///< coordinate-embedded underlay, US geo placement (O(1) delay)
  kCoordWorld,   ///< coordinate-embedded underlay, world geo placement
  kCoordPlane,   ///< coordinate-embedded underlay, synthetic uniform plane
};

enum class Proto { kVdm, kVdmRefine, kHmtp, kBtp, kRandom };

enum class Metric { kDelay, kLoss, kBlend, kCachedDelay, kCachedLoss };

/// Complete description of one experiment run (or one seed of a family).
struct RunConfig {
  Substrate substrate = Substrate::kTransitStub;
  Proto protocol = Proto::kVdm;
  Metric metric = Metric::kDelay;

  overlay::ScenarioParams scenario;
  overlay::SessionParams session;
  /// Membership process. kSlots runs the classic churn-slot timeline
  /// (bit-identical to before the workload engine existed); the synthetic
  /// kinds generate a WorkloadEvent list from the scenario rng stream and
  /// kTrace replays `workload.trace_path`, both via run_trace.
  overlay::WorkloadParams workload;

  /// Host pool size; 0 = auto (enough spare hosts for churn joins).
  std::size_t host_pool = 0;
  /// Number of routers for router-graph substrates; 0 = paper default.
  std::size_t routers = 0;

  /// Per-link random error-rate ceiling for router substrates (Chapter 4:
  /// "each physical link is assigned a random error rate between 0% and 2%")
  /// or per-pair ceiling for geo substrates.
  double link_loss_max = 0.0;
  /// Multiplicative RTT measurement noise (std dev) — the PlanetLab-like
  /// imperfection of probes.
  double probe_noise = 0.0;

  /// Protocol tuning (ablation knobs; defaults follow the paper).
  double vdm_epsilon = 0.0;
  double vdm_case2_descend_ratio = 0.0;
  sim::Time vdm_refine_period = sim::minutes(3);
  bool hmtp_refinement = true;
  sim::Time hmtp_refine_period = sim::seconds(30);
  bool hmtp_u_turn_rule = true;
  bool hmtp_foster_child = false;
  /// TTL of the cached measurement service (kCached* metrics).
  sim::Time metric_cache_ttl = sim::seconds(300);

  /// Compute the final-tree MST ratio (Figure 5.31). The baseline is an
  /// O(N^2) Prim pass over the surviving members — negligible at paper
  /// scale, dominant at coordinate-substrate scale (100k+ members), so
  /// large-N runs switch it off and report mst_ratio = 1.0.
  bool compute_mst_ratio = true;

  /// Epochs dropped from scalar aggregation (the join-phase epoch is noisy).
  std::size_t epoch_skip = 1;
  /// Retain the full epoch series in the result (Chapter-4 time plots).
  bool keep_epochs = false;
  /// Retain the per-measurement-point trajectory (continuity, outage,
  /// overhead, member count) — the time-series view of workload runs.
  bool keep_trajectory = false;

  /// Tracing hook: installed on the protocol so every tree walk (join,
  /// reconnect, refine) reports per-iteration steps (vdmsim --trace-joins).
  /// Not owned; must outlive the run. Leave null for normal runs.
  overlay::WalkObserver* walk_observer = nullptr;

  std::uint64_t seed = 1;
};

/// One measurement point of a run's time series — the per-epoch view of the
/// service a viewer experiences under a dynamic workload.
struct TrajectoryPoint {
  sim::Time at = 0.0;
  /// Delivered fraction of expected chunks over the window (1 - loss_rate).
  double continuity = 1.0;
  /// Mean viewer-visible outage (detection + rejoin) of the window's crash
  /// recoveries; 0 when none completed in the window.
  double outage = 0.0;
  /// Control messages per data transmission over the window (Eq. 3.6).
  double overhead = 0.0;
  /// Members alive in the tree at the measurement instant (incl. source).
  std::size_t members = 0;
};

/// Scalars of one run: epoch means (after epoch_skip) plus event timings.
struct RunResult {
  double stress = 0.0;
  double stress_max = 0.0;
  double stretch = 0.0;
  double stretch_leaf = 0.0;
  double stretch_max = 0.0;
  double stretch_min = 0.0;
  double hopcount = 0.0;
  double hop_leaf = 0.0;
  double hop_max = 0.0;
  double loss = 0.0;
  double overhead = 0.0;
  double overhead_per_chunk = 0.0;
  double network_usage = 0.0;
  double startup_avg = 0.0;
  double startup_max = 0.0;
  /// Startup-time distribution tails (flash-crowd headline numbers). Not
  /// part of the golden scalar list — goldens pin the paper-era fields.
  double startup_p50 = 0.0;
  double startup_p99 = 0.0;
  /// Sustained join throughput of the largest same-instant arrival cohort
  /// (the flash crowd when one was scheduled): cohort size over its
  /// makespan, in joins per sim-second. Degenerates to 1/startup for
  /// scattered arrivals.
  double join_rate = 0.0;
  double reconnect_avg = 0.0;
  double reconnect_max = 0.0;
  /// Crash-detection latency and full outage (detection + rejoin) over the
  /// run's crash recoveries; 0 when no crash churn (or no heartbeats) ran.
  double detection_avg = 0.0;
  double detection_max = 0.0;
  double outage_avg = 0.0;
  double outage_max = 0.0;
  /// Tree-cost / MST-cost on the final settled tree (Figure 5.31).
  double mst_ratio = 1.0;
  std::size_t final_members = 0;

  /// Diagnostics (not golden-pinned, not thread-invariant by design):
  /// whole-run counts of chunk floods that took the sharded multi-worker
  /// path and probe batches that took the parallel compute/serial-commit
  /// path. Zero on serial runs; benches gate on these to prove the parallel
  /// machinery engaged when wall clock cannot (single-core hosts).
  std::uint64_t parallel_floods = 0;
  std::uint64_t parallel_probe_batches = 0;

  /// Wall-clock seconds per phase (vdmsim --profile); all zero unless
  /// config.session.profile. join covers every attaching walk (fresh,
  /// batched and reconnect), metrics the collector's capture sweeps.
  double profile_join_secs = 0.0;
  double profile_refine_secs = 0.0;
  double profile_flood_secs = 0.0;
  double profile_metrics_secs = 0.0;

  std::vector<metrics::EpochSample> epochs;  // only if keep_epochs
  std::vector<TrajectoryPoint> trajectory;   // only if keep_trajectory
};

/// Reusable per-worker working memory for run_once: topology construction
/// buffers, the underlay (graph, router caches, host-pair cache), and the
/// collector's epoch storage. One scratch belongs to one worker; handing the
/// same scratch to consecutive runs rebuilds every structure in place, so a
/// steady-state sweep performs no scaffolding allocations after the first
/// run of each shape. Results are bit-identical to scratch-free runs.
class RunScratch {
 public:
  RunScratch();
  ~RunScratch();
  RunScratch(RunScratch&&) noexcept;
  RunScratch& operator=(RunScratch&&) noexcept;

  /// Runs whose end-of-run arena capacity exceeded every earlier run's (the
  /// first run on a fresh scratch always grows). A steady-state sweep holds
  /// this constant — the alloc counter proving arena reuse.
  std::uint64_t grow_events() const;
  /// Heap bytes currently reserved across all arena-managed buffers.
  std::size_t capacity_bytes() const;

  /// Opaque storage (definition local to runner.cpp).
  struct Impl;

 private:
  friend RunResult run_once(const RunConfig& config, RunScratch& scratch);
  std::unique_ptr<Impl> impl_;
};

/// The exact WorkloadEvent list a non-slots `config` executes: generated
/// kinds replay run_once's rng derivation (same seed, same pool → same
/// events), kTrace loads the file. Lets callers save a run's trace
/// (vdmsim --save-trace) knowing it matches the run bit for bit.
void workload_events(const RunConfig& config,
                     std::vector<overlay::WorkloadEvent>& out);

/// Executes one seed end to end: build substrate, run scenario, measure.
RunResult run_once(const RunConfig& config);

/// Arena variant: identical output, but topology/underlay/collector storage
/// comes from (and returns to) `scratch`.
RunResult run_once(const RunConfig& config, RunScratch& scratch);

/// Seed-aggregated statistics (one Summary per metric, paper-style 90% CI).
struct AggregateResult {
  util::Summary stress, stretch, stretch_leaf, stretch_max, hopcount, hop_leaf,
      hop_max, loss, overhead, overhead_per_chunk, network_usage, startup_avg,
      startup_max, startup_p50, startup_p99, join_rate, reconnect_avg,
      reconnect_max, detection_avg, detection_max, outage_avg, outage_max,
      mst_ratio;
  std::vector<RunResult> runs;
};

/// Runs `num_seeds` independent seeds (config.seed + i) on up to `threads`
/// workers (0 = hardware concurrency) and aggregates. A thin wrapper over
/// run_grid (sweep.hpp) with a single grid point: shared task pool,
/// per-worker arenas, deterministic index-ordered aggregation.
AggregateResult run_many(const RunConfig& config, std::size_t num_seeds,
                         std::size_t threads = 0, double confidence = 0.90);

/// Reads the VDM_FULL / VDM_SEEDS environment knobs: returns `fast` seeds
/// normally, `full` (paper-scale) seeds when VDM_FULL=1, and VDM_SEEDS=<n>
/// always wins. Lets `for b in build/bench/*` finish quickly by default.
std::size_t default_seeds(std::size_t fast, std::size_t full);

}  // namespace vdm::experiments
