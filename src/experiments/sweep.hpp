#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "experiments/runner.hpp"

namespace vdm::experiments {

/// Options shared by every grid sweep.
struct SweepOptions {
  /// Worker cap for this sweep; 0 = hardware concurrency. Workers beyond
  /// the flattened task count never start.
  std::size_t threads = 0;
  /// Confidence level of the per-point aggregation intervals.
  double confidence = 0.90;
  /// Called after every finished (point, seed) task with the completed and
  /// total task counts. Serialized (never concurrent with itself), but the
  /// completion order across tasks is unspecified.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// Runs every (grid point, seed) combination of `points` x num_seeds as one
/// flat task set on the shared TaskPool and aggregates per point, in point
/// order.
///
/// Seed s of point p runs points[p] with .seed += s — the same per-point
/// seed offsets a run_many loop over the points would use, so a grid sweep
/// and a sequence of individual sweeps produce bit-identical aggregates.
/// Every task derives its RNG streams from its seed alone and lands in a
/// result slot addressed by its flattened index; aggregation walks slots in
/// index order. Output is therefore bit-identical for every thread count
/// and every task completion order.
///
/// Each worker owns one RunScratch for the whole sweep: consecutive tasks
/// on a worker rebuild topology/underlay/collector storage in place
/// (steady-state sweeps allocate no scaffolding after each worker's first
/// run of a shape).
///
/// A point with a walk_observer clamps the whole sweep to one worker (the
/// observer is a shared external sink); callers that let users pick a
/// thread count should surface that override rather than apply it silently.
///
/// The first exception cancels the remaining tasks and is rethrown here.
std::vector<AggregateResult> run_grid(std::span<const RunConfig> points,
                                      std::size_t num_seeds,
                                      const SweepOptions& options = {});

}  // namespace vdm::experiments
