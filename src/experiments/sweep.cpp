#include "experiments/sweep.hpp"

#include <iterator>
#include <mutex>
#include <utility>

#include "util/require.hpp"
#include "util/task_pool.hpp"

namespace vdm::experiments {

namespace {

AggregateResult aggregate_runs(std::vector<RunResult> runs, double confidence) {
  auto summarize_field = [&](double RunResult::* field) {
    std::vector<double> v;
    v.reserve(runs.size());
    for (const RunResult& r : runs) v.push_back(r.*field);
    return util::summarize(v, confidence);
  };

  AggregateResult agg;
  agg.stress = summarize_field(&RunResult::stress);
  agg.stretch = summarize_field(&RunResult::stretch);
  agg.stretch_leaf = summarize_field(&RunResult::stretch_leaf);
  agg.stretch_max = summarize_field(&RunResult::stretch_max);
  agg.hopcount = summarize_field(&RunResult::hopcount);
  agg.hop_leaf = summarize_field(&RunResult::hop_leaf);
  agg.hop_max = summarize_field(&RunResult::hop_max);
  agg.loss = summarize_field(&RunResult::loss);
  agg.overhead = summarize_field(&RunResult::overhead);
  agg.overhead_per_chunk = summarize_field(&RunResult::overhead_per_chunk);
  agg.network_usage = summarize_field(&RunResult::network_usage);
  agg.startup_avg = summarize_field(&RunResult::startup_avg);
  agg.startup_max = summarize_field(&RunResult::startup_max);
  agg.startup_p50 = summarize_field(&RunResult::startup_p50);
  agg.startup_p99 = summarize_field(&RunResult::startup_p99);
  agg.join_rate = summarize_field(&RunResult::join_rate);
  agg.reconnect_avg = summarize_field(&RunResult::reconnect_avg);
  agg.reconnect_max = summarize_field(&RunResult::reconnect_max);
  agg.detection_avg = summarize_field(&RunResult::detection_avg);
  agg.detection_max = summarize_field(&RunResult::detection_max);
  agg.outage_avg = summarize_field(&RunResult::outage_avg);
  agg.outage_max = summarize_field(&RunResult::outage_max);
  agg.mst_ratio = summarize_field(&RunResult::mst_ratio);
  agg.runs = std::move(runs);
  return agg;
}

}  // namespace

std::vector<AggregateResult> run_grid(std::span<const RunConfig> points,
                                      std::size_t num_seeds,
                                      const SweepOptions& options) {
  VDM_REQUIRE(num_seeds >= 1);
  if (points.empty()) return {};
  const std::size_t total = points.size() * num_seeds;

  // A walk observer (vdmsim --trace-joins) is an external sink written from
  // inside every run; concurrent runs would interleave its records. Clamp
  // the sweep to one worker whenever any point installs one, regardless of
  // what `options.threads` asks for.
  std::size_t thread_cap = options.threads;
  for (const RunConfig& p : points) {
    if (p.walk_observer != nullptr) {
      thread_cap = 1;
      break;
    }
  }

  util::TaskPool& pool = util::TaskPool::global();
  const std::size_t workers = pool.workers_for(total, thread_cap);
  std::vector<RunScratch> arenas(workers);
  std::vector<RunResult> runs(total);

  std::mutex progress_mu;
  std::size_t done = 0;

  pool.for_n(total, thread_cap, [&](const util::TaskPool::Context& ctx) {
    const std::size_t point = ctx.index / num_seeds;
    const std::size_t seed = ctx.index % num_seeds;
    RunConfig cfg = points[point];
    cfg.seed += seed;
    runs[ctx.index] = run_once(cfg, arenas[ctx.worker]);
    if (options.progress) {
      const std::lock_guard<std::mutex> lock(progress_mu);
      options.progress(++done, total);
    }
  });

  std::vector<AggregateResult> out;
  out.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    const auto first = std::make_move_iterator(
        runs.begin() + static_cast<std::ptrdiff_t>(p * num_seeds));
    out.push_back(aggregate_runs(
        std::vector<RunResult>(first, first + static_cast<std::ptrdiff_t>(num_seeds)),
        options.confidence));
  }
  return out;
}

AggregateResult run_many(const RunConfig& config, std::size_t num_seeds,
                         std::size_t threads, double confidence) {
  SweepOptions options;
  options.threads = threads;
  options.confidence = confidence;
  std::vector<AggregateResult> aggs =
      run_grid(std::span<const RunConfig>(&config, 1), num_seeds, options);
  return std::move(aggs.front());
}

}  // namespace vdm::experiments
