#pragma once

#include <memory>

#include "overlay/protocol.hpp"
#include "overlay/walk.hpp"
#include "sim/time.hpp"

namespace vdm::baselines {

/// Configuration of the BTP baseline.
struct BtpConfig {
  /// Sibling-switch refinement period. BTP's tree quality comes entirely
  /// from these incremental switches, so it defaults on.
  bool refinement = true;
  sim::Time refinement_period = sim::seconds(30);
  /// Required relative improvement before a sibling switch fires.
  double switch_margin = 0.05;
};

/// Banana Tree Protocol (Helder & Jamin), the simplest tree-based ALM the
/// dissertation surveys (§2.4.6): a newcomer connects directly to the root
/// and later performs *sibling switches* — re-parenting under a sibling
/// that is closer than the current parent (Figure 2.7). Loops are
/// impossible because a sibling is never a descendant.
///
/// BTP is the "no search at all" end of the design space: joins are O(1)
/// messages (fastest possible startup) and all locality is discovered by
/// refinement afterwards — the opposite trade to VDM's search-heavy,
/// refinement-free join.
class BtpProtocol final : public overlay::Protocol {
 public:
  explicit BtpProtocol(const BtpConfig& config = {}) : config_(config) {}

  std::string_view name() const override { return "BTP"; }

  overlay::OpStats execute_join(overlay::Session& session, net::HostId joiner,
                                net::HostId start) override;
  overlay::OpStats execute_refine(overlay::Session& session,
                                  net::HostId node) override;

  bool wants_refinement() const override { return config_.refinement; }
  sim::Time refinement_period() const override { return config_.refinement_period; }

  overlay::PipelineSupport* pipeline_support() override;

  const BtpConfig& config() const { return config_; }

 private:
  BtpConfig config_;
  std::unique_ptr<overlay::PipelineSupport> pipeline_;
};

}  // namespace vdm::baselines
