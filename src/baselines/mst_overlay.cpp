#include "baselines/mst_overlay.hpp"

#include "util/require.hpp"

namespace vdm::baselines {

topo::HostMetric rtt_metric(const net::Underlay& underlay) {
  return [&underlay](net::HostId a, net::HostId b) { return underlay.rtt(a, b); };
}

double overlay_tree_cost(const overlay::Membership& tree, net::HostId source,
                         const net::Underlay& underlay) {
  // Scans the member table directly instead of materializing alive_members():
  // this runs once per run_once on the arena's allocation-free path.
  double cost = 0.0;
  for (net::HostId h = 0; h < tree.num_hosts(); ++h) {
    const overlay::MemberState& m = tree.member(h);
    if (!m.alive || h == source || m.parent == net::kInvalidHost) continue;
    cost += underlay.rtt(h, m.parent);
  }
  return cost;
}

double mst_cost(const overlay::Membership& tree, net::HostId source,
                const net::Underlay& underlay) {
  const std::vector<net::HostId> members = tree.alive_members();
  VDM_REQUIRE(!members.empty());
  return topo::prim_mst(members, source, rtt_metric(underlay)).total_cost;
}

double mst_ratio(const overlay::Membership& tree, net::HostId source,
                 const net::Underlay& underlay) {
  const double mst = mst_cost(tree, source, underlay);
  if (mst <= 0.0) return 1.0;
  return overlay_tree_cost(tree, source, underlay) / mst;
}

double mst_ratio(const overlay::Membership& tree, net::HostId source,
                 const net::Underlay& underlay, topo::MstScratch& scratch) {
  scratch.members.clear();
  for (net::HostId h = 0; h < tree.num_hosts(); ++h) {
    if (tree.member(h).alive) scratch.members.push_back(h);
  }
  VDM_REQUIRE(!scratch.members.empty());
  const double mst = topo::prim_mst_cost(source, rtt_metric(underlay), scratch);
  if (mst <= 0.0) return 1.0;
  return overlay_tree_cost(tree, source, underlay) / mst;
}

}  // namespace vdm::baselines
