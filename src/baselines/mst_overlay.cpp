#include "baselines/mst_overlay.hpp"

#include "util/require.hpp"

namespace vdm::baselines {

topo::HostMetric rtt_metric(const net::Underlay& underlay) {
  return [&underlay](net::HostId a, net::HostId b) { return underlay.rtt(a, b); };
}

double overlay_tree_cost(const overlay::Membership& tree, net::HostId source,
                         const net::Underlay& underlay) {
  double cost = 0.0;
  for (const net::HostId h : tree.alive_members()) {
    const overlay::MemberState& m = tree.member(h);
    if (h == source || m.parent == net::kInvalidHost) continue;
    cost += underlay.rtt(h, m.parent);
  }
  return cost;
}

double mst_cost(const overlay::Membership& tree, net::HostId source,
                const net::Underlay& underlay) {
  const std::vector<net::HostId> members = tree.alive_members();
  VDM_REQUIRE(!members.empty());
  return topo::prim_mst(members, source, rtt_metric(underlay)).total_cost;
}

double mst_ratio(const overlay::Membership& tree, net::HostId source,
                 const net::Underlay& underlay) {
  const double mst = mst_cost(tree, source, underlay);
  if (mst <= 0.0) return 1.0;
  return overlay_tree_cost(tree, source, underlay) / mst;
}

}  // namespace vdm::baselines
