#pragma once

#include <memory>

#include "overlay/protocol.hpp"
#include "overlay/walk.hpp"
#include "sim/time.hpp"

namespace vdm::baselines {

/// Configuration of the HMTP baseline.
struct HmtpConfig {
  /// Periodic tree refinement is part of HMTP's design (it is how a node
  /// ever discovers a closer parent that joined later), so it defaults on.
  /// The dissertation's PlanetLab runs used a 30 s period.
  bool refinement = true;
  sim::Time refinement_period = sim::seconds(30);
  /// A refinement switch must improve the parent distance by this relative
  /// margin to fire (hysteresis against measurement jitter).
  double switch_margin = 0.05;
  /// The dissertation's U-turn rule (§3.5 Scenario I/II): when the newcomer
  /// appears to lie *between* the current node and its closest child
  /// (d(N,cur) < d(cur,C)), HMTP attaches to the current node "so that C
  /// can find N in the refinement stage" instead of descending — it has no
  /// Case II splice. This is what VDM's directionality fixes in one shot;
  /// disable to get the plain greedy-descent HMTP of Zhang et al.
  bool u_turn_rule = true;
  /// Foster-child quick start (§2.4.7): "A node connects root at the
  /// beginning to start stream immediately. Then, it jumps to ideal parent
  /// when it is found." With this on, the joiner's startup time is one
  /// handshake with the root (stream flows immediately); the parent search
  /// still runs and costs its messages, but off the critical path.
  bool foster_child = false;
};

/// Host Multicast Tree Protocol (Zhang et al.) as described in §2.4.7/§3.5 —
/// the paper's head-to-head baseline.
///
/// Join: starting at the source, greedily descend to the closest child as
/// long as it is closer than the current node; attach to the final node
/// (or, when it is saturated, to its closest child with a free slot). The
/// U-turn inefficiency this greedy rule produces is exactly what VDM's
/// directionality avoids; HMTP compensates with periodic refinement: each
/// member re-runs the search from a random node on its root path and
/// switches when it finds a closer parent.
class HmtpProtocol final : public overlay::Protocol {
 public:
  explicit HmtpProtocol(const HmtpConfig& config = {}) : config_(config) {}

  std::string_view name() const override { return "HMTP"; }

  overlay::OpStats execute_join(overlay::Session& session, net::HostId joiner,
                                net::HostId start) override;
  overlay::OpStats execute_refine(overlay::Session& session,
                                  net::HostId node) override;

  bool wants_refinement() const override { return config_.refinement; }
  sim::Time refinement_period() const override { return config_.refinement_period; }

  /// Concurrent-join adapter (plain search; the foster-child quick start is
  /// sequential-only).
  overlay::PipelineSupport* pipeline_support() override;

  const HmtpConfig& config() const { return config_; }

 private:
  /// The greedy walk as a TreeWalk policy run; Result.dist is the measured
  /// joiner->parent distance (HMTP always probes its stopping node).
  overlay::TreeWalk::Result search(overlay::Session& session,
                                   net::HostId joiner, net::HostId start,
                                   overlay::OpStats& stats) const;

  HmtpConfig config_;
  std::unique_ptr<overlay::PipelineSupport> pipeline_;
};

}  // namespace vdm::baselines
