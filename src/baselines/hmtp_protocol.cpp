#include "baselines/hmtp_protocol.hpp"

#include <limits>

#include "overlay/session.hpp"
#include "util/require.hpp"

namespace vdm::baselines {

using overlay::OpStats;
using overlay::Session;

HmtpProtocol::SearchResult HmtpProtocol::search(Session& s, net::HostId n,
                                                net::HostId start,
                                                OpStats& stats) const {
  overlay::Membership& tree = s.tree();
  net::HostId cur = start;
  // A start node whose subtree has no free slot (a saturated degree-1 leaf,
  // say a crashed orphan's grandparent) would dead-end the walk — restart
  // from the source, whose subtree is the whole tree.
  if (!s.eligible_parent(n, cur) || !tree.subtree_has_capacity(cur, n)) {
    cur = s.source();
  }
  VDM_REQUIRE(s.eligible_parent(n, cur));

  double d_cur = s.measure(n, cur, stats);
  for (;;) {
    ++stats.iterations;
    // Fetch the children list from the current node, then probe them all.
    s.charge_exchange(n, cur, stats);
    std::vector<net::HostId> kids;
    for (const net::HostId c : tree.member(cur).children) {
      if (c != n && s.eligible_parent(n, c)) kids.push_back(c);
    }
    if (kids.empty()) return {cur, d_cur};
    const std::vector<double> dist = s.measure_parallel(n, kids, stats);

    std::size_t closest = 0;
    for (std::size_t i = 1; i < kids.size(); ++i) {
      if (dist[i] < dist[closest]) closest = i;
    }
    if (dist[closest] < d_cur && tree.subtree_has_capacity(kids[closest], n)) {
      // A child is closer than the current node. U-turn check first: if the
      // newcomer lies between the current node and that child (it is closer
      // to the current node than the child is), descending would hang N
      // below C while the data doubles back — attach to the current node
      // and let refinement re-hang C later (§3.5 Scenario I/II).
      if (config_.u_turn_rule &&
          d_cur < tree.stored_child_distance(cur, kids[closest])) {
        const bool room =
            tree.member(cur).has_free_degree() || tree.member(n).parent == cur;
        if (room) return {cur, d_cur};
        // Saturated: the paper's degree-limitation caveat — fall through to
        // the normal descent.
      }
      cur = kids[closest];
      d_cur = dist[closest];
      continue;
    }
    // The current node is the closest member found: attach here if it has
    // room (a node re-choosing its own parent always "has room" there)...
    const bool cur_has_room =
        tree.member(cur).has_free_degree() || tree.member(n).parent == cur;
    if (cur_has_room) return {cur, d_cur};

    // ... otherwise flag the saturated node and fall back to its closest
    // child that can still accept a connection (§2.4.7's "looks for next
    // available child").
    net::HostId best_free = net::kInvalidHost;
    double best_free_d = std::numeric_limits<double>::infinity();
    net::HostId best_any = net::kInvalidHost;
    double best_any_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < kids.size(); ++i) {
      const bool has_room =
          tree.member(kids[i]).has_free_degree() || tree.member(n).parent == kids[i];
      if (has_room && dist[i] < best_free_d) {
        best_free_d = dist[i];
        best_free = kids[i];
      }
      if (dist[i] < best_any_d && tree.subtree_has_capacity(kids[i], n)) {
        best_any_d = dist[i];
        best_any = kids[i];
      }
    }
    if (best_free != net::kInvalidHost) return {best_free, best_free_d};

    // Every child saturated as well: keep descending through the closest
    // subtree that still has an attachment point.
    VDM_REQUIRE_MSG(best_any != net::kInvalidHost,
                    "search entered a subtree without capacity");
    cur = best_any;
    d_cur = best_any_d;
  }
}

OpStats HmtpProtocol::execute_join(Session& session, net::HostId joiner,
                                   net::HostId start) {
  OpStats stats;
  overlay::Membership& tree = session.tree();

  net::HostId anchor = start;
  if (!session.eligible_parent(joiner, anchor)) anchor = session.source();

  // Foster-child quick start: hook onto the contacted node right away so
  // the stream begins after a single handshake; the proper parent search
  // runs while already receiving, so only its messages (not its latency)
  // burden the user-visible startup time.
  if (config_.foster_child && tree.member(anchor).has_free_degree()) {
    const double anchor_dist = session.measure(joiner, anchor, stats);
    session.charge_exchange(joiner, anchor, stats);
    tree.attach(joiner, anchor, anchor_dist);
    stats.parent_changed = true;

    OpStats search_stats;
    const SearchResult found = search(session, joiner, anchor, search_stats);
    stats.messages += search_stats.messages;
    stats.iterations += search_stats.iterations;
    if (found.parent != anchor) {
      OpStats move_stats;
      session.charge_exchange(joiner, found.parent, move_stats);
      stats.messages += move_stats.messages;
      tree.move_child(joiner, found.parent, found.dist);
    }
    return stats;
  }

  const SearchResult found = search(session, joiner, anchor, stats);
  session.charge_exchange(joiner, found.parent, stats);  // connection handshake
  tree.attach(joiner, found.parent, found.dist);
  stats.parent_changed = true;
  return stats;
}

OpStats HmtpProtocol::execute_refine(Session& session, net::HostId node) {
  OpStats stats;
  if (node == session.source()) return stats;
  overlay::Membership& tree = session.tree();
  const overlay::MemberState& m = tree.member(node);
  if (!m.alive || m.parent == net::kInvalidHost) return stats;

  // HMTP refinement: restart the join search at a random node of the root
  // path (§2.4.7: "Each node randomly selects a peer in its root path and
  // looks for if any closer peer than its parent connected in meantime").
  const std::vector<net::HostId> path = tree.root_path(node);
  VDM_REQUIRE(!path.empty());
  const net::HostId start = path[static_cast<std::size_t>(
      session.rng().uniform_int(0, static_cast<std::int64_t>(path.size()) - 1))];

  const SearchResult found = search(session, node, start, stats);
  if (found.parent == m.parent) return stats;
  const double current = tree.stored_child_distance(m.parent, node);
  if (found.dist >= current * (1.0 - config_.switch_margin)) return stats;

  session.charge_exchange(node, found.parent, stats);
  tree.detach(node);
  tree.attach(node, found.parent, found.dist);
  // The old parent learns of the departure; children's grandparent changes.
  session.charge_notification(
      1 + static_cast<int>(tree.member(node).children.size()), stats);
  stats.parent_changed = true;
  return stats;
}

}  // namespace vdm::baselines
