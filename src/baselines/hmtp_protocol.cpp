#include "baselines/hmtp_protocol.hpp"

#include <memory>
#include <vector>

#include "overlay/session.hpp"
#include "util/require.hpp"

namespace vdm::baselines {

using overlay::OpStats;
using overlay::Session;
using overlay::TreeWalk;
using overlay::WalkDecision;

namespace {

/// HMTP's step policy (§2.4.7/§3.5): greedily descend to the closest child
/// while it beats the current node, with the U-turn attach rule; stop at
/// the current node otherwise, falling back down the saturation ladder when
/// it is full. Carries d(N, cur) across descents so each node is probed
/// exactly once.
struct HmtpSearchPolicy {
  const HmtpConfig& config;
  double d_cur = 0.0;

  void on_start(TreeWalk& w, OpStats& stats) {
    d_cur = w.session().measure(w.joiner(), w.cur(), stats);
  }

  TreeWalk::Action step(TreeWalk& w, OpStats& stats) {
    overlay::Membership& tree = w.session().tree();
    const net::HostId n = w.joiner();
    const std::span<const net::HostId> kids = w.kids();
    if (kids.empty()) {
      // A childless stop is always accepted sequentially (the walk only
      // enters capacity-bearing subtrees); under the pipeline the leaf's
      // last slot may be reserved by another walker, which is a dead end.
      if (w.can_accept(w.cur())) {
        return TreeWalk::Action::stop(WalkDecision::kAttach, w.cur(), d_cur);
      }
      return w.no_capacity();
    }
    const std::span<const double> dist = w.probe_kids(stats);

    std::size_t closest = 0;
    for (std::size_t i = 1; i < kids.size(); ++i) {
      if (dist[i] < dist[closest]) closest = i;
    }
    if (dist[closest] < d_cur && tree.subtree_has_capacity(kids[closest], n)) {
      // A child is closer than the current node. U-turn check first: if the
      // newcomer lies between the current node and that child (it is closer
      // to the current node than the child is), descending would hang N
      // below C while the data doubles back — attach to the current node
      // and let refinement re-hang C later (§3.5 Scenario I/II).
      if (config.u_turn_rule &&
          d_cur < tree.stored_child_distance(w.cur(), kids[closest])) {
        if (w.can_accept(w.cur())) {
          return TreeWalk::Action::stop(WalkDecision::kUturnAttach, w.cur(),
                                        d_cur);
        }
        // Saturated: the paper's degree-limitation caveat — fall through to
        // the normal descent.
      }
      d_cur = dist[closest];
      return TreeWalk::Action::descend(WalkDecision::kGreedyDescend,
                                       kids[closest], d_cur);
    }
    // The current node is the closest member found: attach here if it has
    // room (a node re-choosing its own parent always "has room" there)...
    if (w.can_accept(w.cur())) {
      return TreeWalk::Action::stop(WalkDecision::kAttach, w.cur(), d_cur);
    }
    // ... otherwise the saturation ladder: the closest child that can still
    // accept a connection (§2.4.7's "looks for next available child"), else
    // keep descending through the closest capacity-bearing subtree.
    const TreeWalk::Action fallback = w.saturated_fallback(dist);
    if (fallback.kind == TreeWalk::Action::Kind::kDescend) {
      d_cur = fallback.dist;
    }
    return fallback;
  }
};

/// Concurrent-join adapter: the plain search policy plus the default
/// measure-exchange-attach commit. The foster-child quick start stays
/// sequential-only — its immediate attach is precisely what a batched
/// pipeline cannot do before the drain resolves slot contention.
struct HmtpPipeline final
    : overlay::PolicyPipeline<HmtpPipeline, HmtpSearchPolicy> {
  const HmtpConfig& config;

  explicit HmtpPipeline(const HmtpConfig& cfg) : config(cfg) {}

  HmtpSearchPolicy make_policy(TreeWalk&) const {
    return HmtpSearchPolicy{config};
  }
};

}  // namespace

overlay::PipelineSupport* HmtpProtocol::pipeline_support() {
  if (!pipeline_) pipeline_ = std::make_unique<HmtpPipeline>(config_);
  return pipeline_.get();
}

TreeWalk::Result HmtpProtocol::search(Session& s, net::HostId n,
                                      net::HostId start,
                                      OpStats& stats) const {
  TreeWalk walk(s, walk_observer());
  HmtpSearchPolicy policy{config_};
  return walk.run(n, start, stats, policy);
}

OpStats HmtpProtocol::execute_join(Session& session, net::HostId joiner,
                                   net::HostId start) {
  OpStats stats;
  overlay::Membership& tree = session.tree();

  net::HostId anchor = start;
  if (!session.eligible_parent(joiner, anchor)) anchor = session.source();

  // Foster-child quick start: hook onto the contacted node right away so
  // the stream begins after a single handshake; the proper parent search
  // runs while already receiving, so only its messages (not its latency)
  // burden the user-visible startup time.
  if (config_.foster_child && tree.member(anchor).has_free_degree()) {
    const double anchor_dist = session.measure(joiner, anchor, stats);
    session.charge_exchange(joiner, anchor, stats);
    tree.attach(joiner, anchor, anchor_dist);
    stats.parent_changed = true;

    OpStats search_stats;
    const TreeWalk::Result found = search(session, joiner, anchor, search_stats);
    stats.messages += search_stats.messages;
    stats.iterations += search_stats.iterations;
    if (found.parent != anchor) {
      OpStats move_stats;
      session.charge_exchange(joiner, found.parent, move_stats);
      stats.messages += move_stats.messages;
      tree.move_child(joiner, found.parent, found.dist);
    }
    return stats;
  }

  const TreeWalk::Result found = search(session, joiner, anchor, stats);
  session.charge_exchange(joiner, found.parent, stats);  // connection handshake
  tree.attach(joiner, found.parent, found.dist);
  stats.parent_changed = true;
  return stats;
}

OpStats HmtpProtocol::execute_refine(Session& session, net::HostId node) {
  OpStats stats;
  if (node == session.source()) return stats;
  overlay::Membership& tree = session.tree();
  const overlay::MemberState& m = tree.member(node);
  if (!m.alive || m.parent == net::kInvalidHost) return stats;

  // HMTP refinement: restart the join search at a random node of the root
  // path (§2.4.7: "Each node randomly selects a peer in its root path and
  // looks for if any closer peer than its parent connected in meantime").
  const std::vector<net::HostId> path = tree.root_path(node);
  VDM_REQUIRE(!path.empty());
  const net::HostId start = path[static_cast<std::size_t>(
      session.rng().uniform_int(0, static_cast<std::int64_t>(path.size()) - 1))];

  const TreeWalk::Result found = search(session, node, start, stats);
  if (found.parent == m.parent) return stats;
  const double current = tree.stored_child_distance(m.parent, node);
  if (found.dist >= current * (1.0 - config_.switch_margin)) return stats;

  session.charge_exchange(node, found.parent, stats);
  tree.detach(node);
  tree.attach(node, found.parent, found.dist);
  // The old parent learns of the departure; children's grandparent changes.
  session.charge_notification(
      1 + static_cast<int>(tree.member(node).children.size()), stats);
  stats.parent_changed = true;
  return stats;
}

}  // namespace vdm::baselines
