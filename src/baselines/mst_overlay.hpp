#pragma once

#include <vector>

#include "net/underlay.hpp"
#include "overlay/membership.hpp"
#include "topology/mst.hpp"

namespace vdm::baselines {

/// Centralized minimum-spanning-tree reference (§5.4.6): an oracle that
/// sees all pairwise RTTs at once — the bound VDM "tries to converge to
/// with local and simplistic methods".

/// RTT metric over an underlay, usable with the MST routines.
topo::HostMetric rtt_metric(const net::Underlay& underlay);

/// Cost (sum of RTTs over parent-child edges) of the current overlay tree
/// spanning exactly the alive members of `tree` rooted at `source`.
double overlay_tree_cost(const overlay::Membership& tree, net::HostId source,
                         const net::Underlay& underlay);

/// Cost of the exact MST over the same member set (degree-unconstrained,
/// like the paper's Figure 5.31 comparison).
double mst_cost(const overlay::Membership& tree, net::HostId source,
                const net::Underlay& underlay);

/// overlay_tree_cost / mst_cost — the Figure 5.31 y-axis (>= 1).
double mst_ratio(const overlay::Membership& tree, net::HostId source,
                 const net::Underlay& underlay);

/// Same ratio computed through a caller-owned scratch (member gather plus
/// Prim label arrays): allocation-free once the scratch is warm. Bitwise
/// identical to the plain overload — the member scan visits hosts in the
/// same ascending order alive_members() produces.
double mst_ratio(const overlay::Membership& tree, net::HostId source,
                 const net::Underlay& underlay, topo::MstScratch& scratch);

}  // namespace vdm::baselines
