#include "baselines/btp_protocol.hpp"

#include <limits>
#include <memory>
#include <vector>

#include "overlay/session.hpp"
#include "overlay/walk.hpp"
#include "util/require.hpp"

namespace vdm::baselines {

using overlay::OpStats;
using overlay::Session;
using overlay::TreeWalk;
using overlay::WalkDecision;

namespace {

/// BTP's step policy: connect straight to the contacted node; when it is
/// saturated, walk down through its closest capacity-bearing child until a
/// slot is found (the original protocol simply rejects, but a streaming
/// session must place every viewer somewhere). Unlike VDM/HMTP, BTP never
/// stops at a free child from a saturated node — the next iteration
/// re-checks room at the node it descended to.
struct BtpJoinPolicy {
  void on_start(TreeWalk&, OpStats&) {}

  TreeWalk::Action step(TreeWalk& w, OpStats& stats) {
    if (w.can_accept(w.cur())) {
      return TreeWalk::Action::stop(WalkDecision::kAttach, w.cur());
    }
    if (w.kids().empty()) return w.no_capacity();
    // Probe every child (the message cost BTP pays) but only step into a
    // subtree that still has an attachment point.
    const std::span<const double> dist = w.probe_kids(stats);
    return w.descend_closest_capacity(dist);
  }
};

/// Concurrent-join adapter: stateless policy, default commit (measure the
/// parent after the walk, exchange, attach — the sequential order).
struct BtpPipeline final : overlay::PolicyPipeline<BtpPipeline, BtpJoinPolicy> {
  BtpJoinPolicy make_policy(TreeWalk&) const { return {}; }
};

}  // namespace

overlay::PipelineSupport* BtpProtocol::pipeline_support() {
  if (!pipeline_) pipeline_ = std::make_unique<BtpPipeline>();
  return pipeline_.get();
}

OpStats BtpProtocol::execute_join(Session& s, net::HostId n, net::HostId start) {
  OpStats stats;
  overlay::Membership& tree = s.tree();

  TreeWalk walk(s, walk_observer());
  const TreeWalk::Result found = walk.run(n, start, stats, BtpJoinPolicy{});
  const double d = s.measure(n, found.parent, stats);
  s.charge_exchange(n, found.parent, stats);  // connection handshake
  tree.attach(n, found.parent, d);
  stats.parent_changed = true;
  return stats;
}

OpStats BtpProtocol::execute_refine(Session& s, net::HostId n) {
  OpStats stats;
  if (n == s.source()) return stats;
  overlay::Membership& tree = s.tree();
  const overlay::MemberState& m = tree.member(n);
  if (!m.alive || m.parent == net::kInvalidHost) return stats;

  // Sibling switch (Figure 2.7): ask the parent for the sibling list,
  // probe them, and move under the closest sibling if it beats the current
  // parent by the margin and still has capacity. Runs on the walk scratch —
  // refinement fires every period for every member, so it must not allocate.
  const net::HostId parent = m.parent;
  s.charge_exchange(n, parent, stats);
  overlay::WalkScratch& scratch = s.walk_scratch();
  std::vector<net::HostId>& siblings = scratch.kids;
  siblings.clear();
  for (const net::HostId c : tree.member(parent).children) {
    if (c != n && s.eligible_parent(n, c)) siblings.push_back(c);
  }
  if (siblings.empty()) return stats;
  const std::span<const double> dist =
      s.measure_parallel(n, siblings, scratch.dist, stats);

  const double current = tree.stored_child_distance(parent, n);
  net::HostId best = net::kInvalidHost;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < siblings.size(); ++i) {
    if (!tree.member(siblings[i]).has_free_degree()) continue;
    if (dist[i] < best_d) {
      best_d = dist[i];
      best = siblings[i];
    }
  }
  if (best == net::kInvalidHost) return stats;
  if (best_d >= current * (1.0 - config_.switch_margin)) return stats;

  s.charge_exchange(n, best, stats);
  tree.detach(n);
  tree.attach(n, best, best_d);
  s.charge_notification(1 + static_cast<int>(tree.member(n).children.size()), stats);
  stats.parent_changed = true;
  return stats;
}

}  // namespace vdm::baselines
