#include "baselines/btp_protocol.hpp"

#include <limits>

#include "overlay/session.hpp"
#include "util/require.hpp"

namespace vdm::baselines {

using overlay::OpStats;
using overlay::Session;

OpStats BtpProtocol::execute_join(Session& s, net::HostId n, net::HostId start) {
  OpStats stats;
  overlay::Membership& tree = s.tree();
  net::HostId cur = start;
  if (!s.eligible_parent(n, cur) || !tree.subtree_has_capacity(cur, n)) {
    cur = s.source();
  }

  // BTP connects straight to the contacted node; when it is saturated,
  // walk down through its closest capacity-bearing child until a slot is
  // found (the original protocol simply rejects, but a streaming session
  // must place every viewer somewhere).
  for (;;) {
    ++stats.iterations;
    s.charge_exchange(n, cur, stats);
    if (tree.member(cur).has_free_degree()) break;
    std::vector<net::HostId> kids;
    for (const net::HostId c : tree.member(cur).children) {
      if (c != n && s.eligible_parent(n, c)) kids.push_back(c);
    }
    VDM_REQUIRE_MSG(!kids.empty(), "walk entered a subtree without capacity");
    // Probe every child (the message cost BTP pays) but only step into a
    // subtree that still has an attachment point.
    const std::vector<double> dist = s.measure_parallel(n, kids, stats);
    net::HostId best = net::kInvalidHost;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < kids.size(); ++i) {
      if (dist[i] < best_d && tree.subtree_has_capacity(kids[i], n)) {
        best_d = dist[i];
        best = kids[i];
      }
    }
    VDM_REQUIRE_MSG(best != net::kInvalidHost,
                    "walk entered a subtree without capacity");
    cur = best;
  }
  const double d = s.measure(n, cur, stats);
  s.charge_exchange(n, cur, stats);  // connection handshake
  tree.attach(n, cur, d);
  stats.parent_changed = true;
  return stats;
}

OpStats BtpProtocol::execute_refine(Session& s, net::HostId n) {
  OpStats stats;
  if (n == s.source()) return stats;
  overlay::Membership& tree = s.tree();
  const overlay::MemberState& m = tree.member(n);
  if (!m.alive || m.parent == net::kInvalidHost) return stats;

  // Sibling switch (Figure 2.7): ask the parent for the sibling list,
  // probe them, and move under the closest sibling if it beats the current
  // parent by the margin and still has capacity.
  const net::HostId parent = m.parent;
  s.charge_exchange(n, parent, stats);
  std::vector<net::HostId> siblings;
  for (const net::HostId c : tree.member(parent).children) {
    if (c != n && s.eligible_parent(n, c)) siblings.push_back(c);
  }
  if (siblings.empty()) return stats;
  const std::vector<double> dist = s.measure_parallel(n, siblings, stats);

  const double current = tree.stored_child_distance(parent, n);
  net::HostId best = net::kInvalidHost;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < siblings.size(); ++i) {
    if (!tree.member(siblings[i]).has_free_degree()) continue;
    if (dist[i] < best_d) {
      best_d = dist[i];
      best = siblings[i];
    }
  }
  if (best == net::kInvalidHost) return stats;
  if (best_d >= current * (1.0 - config_.switch_margin)) return stats;

  s.charge_exchange(n, best, stats);
  tree.detach(n);
  tree.attach(n, best, best_d);
  s.charge_notification(1 + static_cast<int>(tree.member(n).children.size()), stats);
  stats.parent_changed = true;
  return stats;
}

}  // namespace vdm::baselines
