#pragma once

#include <memory>

#include "overlay/protocol.hpp"
#include "overlay/walk.hpp"

namespace vdm::baselines {

/// Naive baseline: attach to a uniformly random member with a free slot
/// (found by a random walk down the tree, charging realistic message
/// costs). Represents an overlay with no locality awareness at all; used in
/// tests and as the lower bound in ablation benches.
class RandomProtocol final : public overlay::Protocol {
 public:
  std::string_view name() const override { return "Random"; }

  overlay::OpStats execute_join(overlay::Session& session, net::HostId joiner,
                                net::HostId start) override;

  overlay::PipelineSupport* pipeline_support() override;

 private:
  std::unique_ptr<overlay::PipelineSupport> pipeline_;
};

}  // namespace vdm::baselines
