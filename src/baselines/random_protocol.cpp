#include "baselines/random_protocol.hpp"

#include "overlay/session.hpp"
#include "util/require.hpp"

namespace vdm::baselines {

overlay::OpStats RandomProtocol::execute_join(overlay::Session& s,
                                              net::HostId n, net::HostId start) {
  overlay::OpStats stats;
  overlay::Membership& tree = s.tree();
  net::HostId cur = start;
  if (!s.eligible_parent(n, cur)) cur = s.source();

  // Random walk: at each node, either stop here (if it has room) with
  // probability 1/2, or step to a random child. Terminates because a leaf
  // always has room.
  for (;;) {
    ++stats.iterations;
    s.charge_exchange(n, cur, stats);
    std::vector<net::HostId> kids;
    for (const net::HostId c : tree.member(cur).children) {
      if (c != n && s.eligible_parent(n, c)) kids.push_back(c);
    }
    const bool has_room = tree.member(cur).has_free_degree();
    if (kids.empty() || (has_room && s.rng().chance(0.5))) {
      if (has_room) break;
      VDM_REQUIRE_MSG(!kids.empty(), "saturated leaf cannot exist");
    }
    cur = kids[static_cast<std::size_t>(
        s.rng().uniform_int(0, static_cast<std::int64_t>(kids.size()) - 1))];
  }
  const double dist = s.measure(n, cur, stats);
  s.charge_exchange(n, cur, stats);
  tree.attach(n, cur, dist);
  stats.parent_changed = true;
  return stats;
}

}  // namespace vdm::baselines
