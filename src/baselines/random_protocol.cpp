#include "baselines/random_protocol.hpp"

#include "overlay/session.hpp"
#include "util/require.hpp"

namespace vdm::baselines {

overlay::OpStats RandomProtocol::execute_join(overlay::Session& s,
                                              net::HostId n, net::HostId start) {
  overlay::OpStats stats;
  overlay::Membership& tree = s.tree();
  net::HostId cur = start;
  if (!s.eligible_parent(n, cur) || !tree.subtree_has_capacity(cur, n)) {
    cur = s.source();
  }

  // Random walk: at each node, either stop here (if it has room) with
  // probability 1/2, or step to a random child whose subtree still has
  // capacity. Terminates because the walk never leaves a capacity-bearing
  // subtree.
  for (;;) {
    ++stats.iterations;
    s.charge_exchange(n, cur, stats);
    std::vector<net::HostId> steppable;
    for (const net::HostId c : tree.member(cur).children) {
      if (c != n && s.eligible_parent(n, c) && tree.subtree_has_capacity(c, n)) {
        steppable.push_back(c);
      }
    }
    const bool has_room = tree.member(cur).has_free_degree();
    if (steppable.empty() || (has_room && s.rng().chance(0.5))) {
      if (has_room) break;
      VDM_REQUIRE_MSG(!steppable.empty(), "walk entered a subtree without capacity");
    }
    cur = steppable[static_cast<std::size_t>(
        s.rng().uniform_int(0, static_cast<std::int64_t>(steppable.size()) - 1))];
  }
  const double dist = s.measure(n, cur, stats);
  s.charge_exchange(n, cur, stats);
  tree.attach(n, cur, dist);
  stats.parent_changed = true;
  return stats;
}

}  // namespace vdm::baselines
