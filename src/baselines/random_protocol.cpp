#include "baselines/random_protocol.hpp"

#include <memory>

#include "overlay/session.hpp"
#include "overlay/walk.hpp"
#include "util/require.hpp"

namespace vdm::baselines {

using overlay::OpStats;
using overlay::Session;
using overlay::TreeWalk;
using overlay::WalkDecision;

namespace {

/// Random walk: at each node, either stop here (if it has room) with
/// probability 1/2, or step to a random child whose subtree still has
/// capacity. Terminates because the walk never leaves a capacity-bearing
/// subtree.
struct RandomJoinPolicy {
  void on_start(TreeWalk&, OpStats&) {}

  TreeWalk::Action step(TreeWalk& w, OpStats&) {
    w.filter_kids_subtree_capacity();
    const std::span<const net::HostId> steppable = w.kids();
    util::Rng& rng = w.session().rng();
    const bool has_room = w.can_accept(w.cur());
    // Draw order matters: an empty steppable set or a full node must skip
    // the coin flip entirely (short-circuit), as the original loop did.
    if (steppable.empty() || (has_room && rng.chance(0.5))) {
      if (has_room) {
        return TreeWalk::Action::stop(WalkDecision::kAttach, w.cur());
      }
      // No room here and nowhere to step (reached only when steppable is
      // empty, so no draw happened): a sequential walk has violated its
      // capacity invariant; a pipeline walk parks and retries.
      return w.no_capacity();
    }
    const net::HostId next = steppable[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(steppable.size()) - 1))];
    return TreeWalk::Action::descend(WalkDecision::kRandomStep, next);
  }
};

/// Concurrent-join adapter: stateless policy, default commit.
struct RandomPipeline final
    : overlay::PolicyPipeline<RandomPipeline, RandomJoinPolicy> {
  RandomJoinPolicy make_policy(TreeWalk&) const { return {}; }
};

}  // namespace

overlay::PipelineSupport* RandomProtocol::pipeline_support() {
  if (!pipeline_) pipeline_ = std::make_unique<RandomPipeline>();
  return pipeline_.get();
}

OpStats RandomProtocol::execute_join(Session& s, net::HostId n,
                                     net::HostId start) {
  OpStats stats;
  overlay::Membership& tree = s.tree();

  TreeWalk walk(s, walk_observer());
  const TreeWalk::Result found = walk.run(n, start, stats, RandomJoinPolicy{});
  const double dist = s.measure(n, found.parent, stats);
  s.charge_exchange(n, found.parent, stats);
  tree.attach(n, found.parent, dist);
  stats.parent_changed = true;
  return stats;
}

}  // namespace vdm::baselines
