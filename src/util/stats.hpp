#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vdm::util {

/// Streaming accumulator for mean / variance / extrema (Welford's method).
/// Numerically stable for the long per-epoch series the experiment runner
/// produces; O(1) memory, so collectors can be kept per link or per node.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided Student-t critical value for the given confidence level
/// (e.g. 0.90) and degrees of freedom; falls back to the normal quantile
/// for large df. Supports the 90 % confidence intervals the paper reports.
double student_t_critical(double confidence, std::size_t df);

/// Aggregated result of repeating a measurement across independent seeds.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Half-width of the confidence interval around the mean.
  double ci_halfwidth = 0.0;
  double confidence = 0.90;

  double lo() const { return mean - ci_halfwidth; }
  double hi() const { return mean + ci_halfwidth; }
  std::string to_string() const;
};

/// Summarizes `samples` with a `confidence` CI (paper default: 90 %).
Summary summarize(const std::vector<double>& samples, double confidence = 0.90);

/// p-th percentile (p in [0,1]) by linear interpolation; requires non-empty.
double percentile(std::vector<double> samples, double p);

/// Same, but sorts `samples` in place — the arena-friendly variant for
/// callers that own a reusable buffer (no copy, no allocation).
double percentile_inplace(std::vector<double>& samples, double p);

}  // namespace vdm::util
