#pragma once

#include <cstdint>
#include <vector>

namespace vdm::util {

/// Deterministic, seedable pseudo-random generator (xoshiro256++).
///
/// Every stochastic component of the library draws from an Rng owned by its
/// caller, so a single experiment seed fully determines topology, scenario
/// and packet-loss outcomes. The generator is cheap to copy and to split
/// into decorrelated substreams (see split()), which is what lets seeds run
/// on independent threads with no shared state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via splitmix64, so nearby seeds
  /// still produce decorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value. Inline: the data plane draws once per overlay
  /// edge per chunk, so call overhead here is measurable at run scale.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double next_double() {
    // 53 high bits -> [0, 1) with full double precision.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  /// Degenerate probabilities consume no randomness.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Normally distributed value (Box–Muller; consumes two uniforms).
  double normal(double mean, double stddev);

  /// Pareto-distributed value with scale xm > 0 and shape alpha > 0.
  /// Used for heavy-tailed session lifetimes.
  double pareto(double xm, double alpha);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in random order (k <= n).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derives an independent generator; stream `i` of the same parent is
  /// reproducible and decorrelated from the parent and its siblings.
  Rng split(std::uint64_t stream) const;

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace vdm::util
