#include "util/task_pool.hpp"

#include <algorithm>
#include <exception>
#include <limits>

#include "util/require.hpp"

namespace vdm::util {

namespace {
constexpr std::size_t kNoTask = std::numeric_limits<std::size_t>::max();
}  // namespace

/// One worker's contiguous slice of the batch's index range. The owner pops
/// from the front, thieves pop from the back; the mutex is uncontended in
/// the common case and tasks are whole simulations, so a lock per task is
/// noise (and keeps the executor trivially ThreadSanitizer-clean).
struct TaskPool::Shard {
  std::mutex mu;
  std::size_t begin = 0;
  std::size_t end = 0;
};

struct TaskPool::Batch {
  explicit Batch(FunctionRef<void(const Context&)> f, std::size_t workers,
                 std::size_t n)
      : fn(f), shards(workers), remaining(n) {}

  FunctionRef<void(const Context&)> fn;
  std::vector<Shard> shards;
  /// Next worker slot to hand out; slot 0 is the submitting thread.
  std::atomic<std::size_t> next_slot{1};
  /// Tasks not yet finished (or drained). 0 = batch complete.
  std::atomic<std::size_t> remaining;
  /// Pool threads currently inside process() for this batch. The submitter
  /// must not return (and destroy this stack object) while any helper still
  /// holds a reference, even after the last task finished.
  std::atomic<std::size_t> active{0};
  CancelToken cancel;

  std::mutex done_mu;
  std::condition_variable done_cv;
  std::exception_ptr error;  // first failure; guarded by done_mu

  bool has_unclaimed_work() {
    for (Shard& s : shards) {
      const std::lock_guard<std::mutex> lock(s.mu);
      if (s.begin < s.end) return true;
    }
    return false;
  }
};

TaskPool& TaskPool::global() {
  static TaskPool pool;
  return pool;
}

TaskPool::TaskPool(std::size_t max_threads) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  default_parallelism_ = hw;
  // Allow explicit oversubscription (e.g. --threads 8 on a 2-core CI box,
  // or the determinism tests' threads > cores runs) without letting a typo
  // spawn thousands of threads.
  max_workers_ = max_threads > 0 ? max_threads : std::max<std::size_t>(hw, 16);
}

TaskPool::~TaskPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::size_t TaskPool::workers_for(std::size_t n, std::size_t parallelism) const {
  if (parallelism == 0) parallelism = default_parallelism_;
  return std::max<std::size_t>(1, std::min({n, parallelism, max_workers_}));
}

void TaskPool::ensure_threads(std::size_t helpers) {
  while (threads_.size() < helpers) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

void TaskPool::process(Batch& batch, std::size_t slot) {
  const std::size_t workers = batch.shards.size();
  for (;;) {
    std::size_t index = kNoTask;
    {
      Shard& own = batch.shards[slot];
      const std::lock_guard<std::mutex> lock(own.mu);
      if (own.begin < own.end) index = own.begin++;
    }
    // Own shard drained: steal one task from the back of the next
    // non-empty shard on the ring. Grain 1 is optimal load balancing for
    // millisecond-scale tasks; the back end keeps thieves out of the
    // owner's cache-warm front.
    for (std::size_t d = 1; d < workers && index == kNoTask; ++d) {
      Shard& victim = batch.shards[(slot + d) % workers];
      const std::lock_guard<std::mutex> lock(victim.mu);
      if (victim.begin < victim.end) index = --victim.end;
    }
    if (index == kNoTask) return;

    if (!batch.cancel.cancelled()) {
      try {
        batch.fn(Context{index, slot, batch.cancel});
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(batch.done_mu);
          if (!batch.error) batch.error = std::current_exception();
        }
        batch.cancel.cancel();  // drain: nobody starts another task
      }
    }
    if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::lock_guard<std::mutex> lock(batch.done_mu);
      batch.done_cv.notify_all();
    }
  }
}

void TaskPool::worker_main() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Batch* chosen = nullptr;
    for (Batch* b : batches_) {
      if (b->next_slot.load(std::memory_order_relaxed) < b->shards.size() &&
          b->has_unclaimed_work()) {
        chosen = b;
        break;
      }
    }
    if (chosen != nullptr) {
      const std::size_t slot =
          chosen->next_slot.fetch_add(1, std::memory_order_relaxed);
      if (slot >= chosen->shards.size()) continue;  // lost the race; rescan
      chosen->active.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      process(*chosen, slot);
      {
        const std::lock_guard<std::mutex> done(chosen->done_mu);
        chosen->active.fetch_sub(1, std::memory_order_relaxed);
        chosen->done_cv.notify_all();
      }
      lock.lock();
      continue;
    }
    if (shutdown_) return;
    work_cv_.wait(lock);
  }
}

void TaskPool::for_n(std::size_t n, std::size_t parallelism,
                     FunctionRef<void(const Context&)> fn) {
  if (n == 0) return;
  const std::size_t workers = workers_for(n, parallelism);

  Batch batch(fn, workers, n);
  // Contiguous block partition: worker w starts on [w*n/W, (w+1)*n/W).
  for (std::size_t w = 0; w < workers; ++w) {
    batch.shards[w].begin = w * n / workers;
    batch.shards[w].end = (w + 1) * n / workers;
  }

  const bool shared = workers > 1;
  if (shared) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      VDM_REQUIRE_MSG(!shutdown_, "TaskPool used after shutdown");
      ensure_threads(workers - 1);
      batches_.push_back(&batch);
    }
    work_cv_.notify_all();
  }

  process(batch, /*slot=*/0);  // the submitter always works

  if (shared) {
    // process() only returns once every shard is empty, so unlisting now
    // loses no parallelism. Unlist BEFORE waiting: helpers claim a slot and
    // bump `active` under mu_, so after this erase (same mutex) any helper
    // still referencing the batch is visible in `active`, and no new helper
    // can discover it — the stack Batch outlives every reference.
    {
      const std::lock_guard<std::mutex> lock(mu_);
      std::erase(batches_, &batch);
    }
    std::unique_lock<std::mutex> done(batch.done_mu);
    batch.done_cv.wait(done, [&batch] {
      return batch.remaining.load(std::memory_order_acquire) == 0 &&
             batch.active.load(std::memory_order_acquire) == 0;
    });
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace vdm::util
