#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace vdm::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;
// Guarded by g_mutex: std::function reads and writes are not atomic, and a
// swap racing a call would be a use-after-move.
LogSink g_sink;  // NOLINT(cert-err58-cpp)

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void set_log_sink(LogSink sink) {
  const std::scoped_lock lock(g_mutex);
  g_sink = std::move(sink);
}

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  const std::scoped_lock lock(g_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::cerr << "[vdm:" << level_name(level) << "] " << message << '\n';
}

}  // namespace vdm::util
