#include "util/rng.hpp"

#include <cmath>

#include "util/require.hpp"

namespace vdm::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

double Rng::uniform(double lo, double hi) {
  VDM_REQUIRE(lo <= hi);
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  VDM_REQUIRE(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ull / span) * span;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::exponential(double mean) {
  VDM_REQUIRE(mean > 0.0);
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
  return mean + stddev * z;
}

double Rng::pareto(double xm, double alpha) {
  VDM_REQUIRE(xm > 0.0 && alpha > 0.0);
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return xm / std::pow(u, 1.0 / alpha);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  VDM_REQUIRE(k <= n);
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher–Yates: the first k entries are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::split(std::uint64_t stream) const {
  // Mix the parent's state with the stream id through splitmix64 so child
  // streams neither overlap the parent nor each other in practice.
  std::uint64_t mix = s_[0] ^ rotl(s_[2], 13) ^ (stream * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull);
  return Rng(splitmix64(mix));
}

}  // namespace vdm::util
