#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace vdm::util {

/// Column-aligned results table, printable both as human-readable console
/// output and as CSV. Bench binaries use it to emit the same rows/series
/// the paper's figures plot.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant decimals.
  static std::string fmt(double v, int precision = 3);

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return headers_; }
  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

  /// Pretty console rendering with a rule under the header.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting needed: cells never contain commas).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vdm::util
