#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace vdm::util {

/// Error thrown when a library precondition or internal invariant is violated.
/// Used instead of assert() so that violations are testable and carry context.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace vdm::util

/// Checked in all build types. Use for public API preconditions and for
/// invariants whose violation would silently corrupt an experiment.
#define VDM_REQUIRE(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::vdm::util::detail::require_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define VDM_REQUIRE_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr))                                                            \
      ::vdm::util::detail::require_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)
