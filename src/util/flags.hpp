#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vdm::util {

/// Minimal command-line flag parser for example and bench binaries.
///
/// Accepts `--name=value`, `--name value`, and bare `--name` (boolean true).
/// Values not supplied on the command line fall back to an environment
/// variable `VDM_<NAME>` (uppercased, dashes to underscores), then to the
/// caller's default. This lets the paper-scale knobs (seeds, node counts)
/// be raised fleet-wide with env vars without editing every invocation.
class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace vdm::util
