#pragma once

#include <sstream>
#include <string>

namespace vdm::util {

/// Global log verbosity. The library is silent at kWarn (default) unless
/// something is actually wrong; simulations raise to kInfo / kDebug when
/// tracing protocol decisions.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Thread-safe write of one formatted line to stderr if `level` is enabled.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace vdm::util

#define VDM_LOG(level) ::vdm::util::detail::LogStream(level)
#define VDM_DEBUG() VDM_LOG(::vdm::util::LogLevel::kDebug)
#define VDM_INFO() VDM_LOG(::vdm::util::LogLevel::kInfo)
#define VDM_WARN() VDM_LOG(::vdm::util::LogLevel::kWarn)
