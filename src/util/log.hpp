#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace vdm::util {

/// Global log verbosity. The library is silent at kWarn (default) unless
/// something is actually wrong; simulations raise to kInfo / kDebug when
/// tracing protocol decisions.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Thread-safe write of one formatted line to stderr (or the installed
/// sink) if `level` is enabled. Formatting, the level check and the sink
/// call all happen under one mutex, so concurrent callers never interleave
/// within a line and a sink swap never races a write.
void log_line(LogLevel level, const std::string& message);

/// Where formatted lines go. Receives the already-leveled message without
/// the "[vdm:LEVEL]" prefix; called with the log mutex held, so the sink
/// itself needs no synchronization (and must not call back into the log).
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Installs `sink` in place of the default stderr writer; an empty function
/// restores the default. Thread-safe against concurrent log_line calls —
/// vdmd routes agent logs into per-process files with this, and the TSan
/// log test swaps sinks mid-hammer.
void set_log_sink(LogSink sink);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace vdm::util

#define VDM_LOG(level) ::vdm::util::detail::LogStream(level)
#define VDM_DEBUG() VDM_LOG(::vdm::util::LogLevel::kDebug)
#define VDM_INFO() VDM_LOG(::vdm::util::LogLevel::kInfo)
#define VDM_WARN() VDM_LOG(::vdm::util::LogLevel::kWarn)
