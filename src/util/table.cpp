#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace vdm::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  VDM_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  VDM_REQUIRE_MSG(cells.size() == headers_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace vdm::util
