#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/require.hpp"

namespace vdm::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::mean() const { return n_ ? mean_ : 0.0; }

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return n_ ? min_ : 0.0; }

double OnlineStats::max() const { return n_ ? max_ : 0.0; }

namespace {

// Two-sided critical values t_{alpha/2, df}. Rows: df 1..30; selected
// confidence levels. Linear interpolation over df is unnecessary because
// the table is dense up to 30 and the normal limit is accurate beyond.
constexpr double kT90[30] = {6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895,
                             1.860, 1.833, 1.812, 1.796, 1.782, 1.771, 1.761,
                             1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721,
                             1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701,
                             1.699, 1.697};
constexpr double kT95[30] = {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
                             2.306,  2.262, 2.228, 2.201, 2.179, 2.160, 2.145,
                             2.131,  2.120, 2.110, 2.101, 2.093, 2.086, 2.080,
                             2.074,  2.069, 2.064, 2.060, 2.056, 2.052, 2.048,
                             2.045,  2.042};
constexpr double kT99[30] = {63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499,
                             3.355,  3.250, 3.169, 3.106, 3.055, 3.012, 2.977,
                             2.947,  2.921, 2.898, 2.878, 2.861, 2.845, 2.831,
                             2.819,  2.807, 2.797, 2.787, 2.779, 2.771, 2.763,
                             2.756,  2.750};

}  // namespace

double student_t_critical(double confidence, std::size_t df) {
  VDM_REQUIRE(confidence > 0.0 && confidence < 1.0);
  if (df == 0) return 0.0;
  const double* table = nullptr;
  double z = 0.0;
  if (confidence <= 0.905) {
    table = kT90;
    z = 1.645;
  } else if (confidence <= 0.955) {
    table = kT95;
    z = 1.960;
  } else {
    table = kT99;
    z = 2.576;
  }
  if (df <= 30) return table[df - 1];
  return z;
}

Summary summarize(const std::vector<double>& samples, double confidence) {
  Summary s;
  s.confidence = confidence;
  s.n = samples.size();
  if (samples.empty()) return s;
  OnlineStats acc;
  for (double x : samples) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  if (s.n > 1) {
    const double t = student_t_critical(confidence, s.n - 1);
    s.ci_halfwidth = t * s.stddev / std::sqrt(static_cast<double>(s.n));
  }
  return s;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os.precision(4);
  os << mean << " ±" << ci_halfwidth << " (n=" << n << ")";
  return os.str();
}

double percentile(std::vector<double> samples, double p) {
  return percentile_inplace(samples, p);
}

double percentile_inplace(std::vector<double>& samples, double p) {
  VDM_REQUIRE(!samples.empty());
  VDM_REQUIRE(p >= 0.0 && p <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double idx = p * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace vdm::util
