#pragma once

#include <type_traits>
#include <utility>

namespace vdm::util {

/// Non-owning, non-allocating reference to a callable — the hot-path
/// substitute for std::function in visitor interfaces (std::function may
/// heap-allocate for capturing lambdas, which would defeat the
/// zero-allocation metric fast path). The referenced callable must outlive
/// the FunctionRef, which callers guarantee trivially by passing temporaries
/// to functions that only invoke the visitor before returning.
template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename Fn,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<Fn>, FunctionRef> &&
                std::is_invocable_r_v<R, Fn&, Args...>>>
  FunctionRef(Fn&& fn) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(fn)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::add_pointer_t<std::remove_reference_t<Fn>>>(
              obj))(std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const { return call_(obj_, std::forward<Args>(args)...); }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace vdm::util
