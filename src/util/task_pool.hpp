#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "util/function_ref.hpp"

namespace vdm::util {

/// Cooperative cancellation flag shared by one task batch. The first worker
/// exception cancels the batch: not-yet-started tasks are drained without
/// running, and long tasks may poll cancelled() to bail out early.
class CancelToken {
 public:
  bool cancelled() const noexcept { return flag_.load(std::memory_order_relaxed); }
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

/// Process-wide work-stealing executor for embarrassingly parallel index
/// batches — the engine under experiments::run_grid / run_many and the
/// testbed sweeps.
///
/// Design:
///  - for_n(n, p, fn) runs fn for every index in [0, n) and blocks until the
///    batch is complete. The *calling* thread participates as worker 0, so a
///    1-way batch never touches a lock or spawns anything.
///  - Each participating worker owns a contiguous shard of [0, n) and pops
///    from its front; a worker whose shard is empty steals from the back of
///    another worker's shard. Contiguous shards keep one grid point's seeds
///    on one worker (warm per-worker arenas); stealing at grain 1 keeps the
///    tail of a batch from idling the machine.
///  - Pool threads start lazily on the first batch that needs them and are
///    shared by all subsequent batches (no per-batch spawn/join).
///  - The first exception cancels the batch (see CancelToken) and is
///    rethrown on the calling thread after the batch drains.
///  - Nested for_n from inside a task is safe: the inner caller participates
///    in its own batch, so progress never depends on free pool threads.
///
/// Determinism: execution order is unspecified, but fn receives its index,
/// so writing results[index] and aggregating in index order yields output
/// that is bit-identical for every thread count.
class TaskPool {
 public:
  struct Context {
    std::size_t index;   ///< task index in [0, n)
    std::size_t worker;  ///< worker slot in [0, workers_for(...)), stable per task
    CancelToken& cancel;
  };

  /// The shared process-wide pool, sized for the machine. Use this instead
  /// of constructing private pools so concurrent sweeps share one set of
  /// threads instead of oversubscribing the host.
  static TaskPool& global();

  /// `max_threads` bounds the worker count (0 = hardware concurrency, with
  /// headroom for explicitly requested oversubscription — determinism tests
  /// run threads > cores even on small machines). No threads start here.
  explicit TaskPool(std::size_t max_threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Hard cap on concurrently participating workers (and thus worker ids).
  std::size_t max_workers() const { return max_workers_; }

  /// Workers a for_n(n, parallelism) call would use: min(n, parallelism or
  /// hardware concurrency, max_workers()). Size per-worker state with this.
  std::size_t workers_for(std::size_t n, std::size_t parallelism) const;

  /// Runs fn({index, worker, cancel}) for every index in [0, n); blocks
  /// until done. `parallelism` caps the workers for this batch (0 = hardware
  /// concurrency). Rethrows the batch's first exception.
  void for_n(std::size_t n, std::size_t parallelism,
             FunctionRef<void(const Context&)> fn);

 private:
  struct Shard;
  struct Batch;

  void worker_main();
  /// Spawns pool threads until `threads_` can serve `helpers` helpers.
  /// Caller holds mu_.
  void ensure_threads(std::size_t helpers);
  /// Claims work until the batch has none left this worker can reach.
  static void process(Batch& batch, std::size_t slot);

  std::mutex mu_;                  // guards batches_, threads_, shutdown_
  std::condition_variable work_cv_;
  std::vector<std::thread> threads_;
  std::vector<Batch*> batches_;    // live batches with possibly unclaimed work
  std::size_t max_workers_;
  std::size_t default_parallelism_;
  bool shutdown_ = false;
};

}  // namespace vdm::util
