#include "util/flags.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace vdm::util {

namespace {

std::string env_name(const std::string& flag) {
  std::string out = "VDM_";
  for (char ch : flag) {
    out += (ch == '-') ? '_' : static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
  }
  return out;
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  if (values_.count(name)) return true;
  return std::getenv(env_name(name).c_str()) != nullptr;
}

std::string Flags::get(const std::string& name, const std::string& def) const {
  const auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  if (const char* env = std::getenv(env_name(name).c_str())) return env;
  return def;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  const std::string v = get(name, "");
  if (v.empty()) return def;
  return std::stoll(v);
}

double Flags::get_double(const std::string& name, double def) const {
  const std::string v = get(name, "");
  if (v.empty()) return def;
  return std::stod(v);
}

bool Flags::get_bool(const std::string& name, bool def) const {
  std::string v = get(name, "");
  if (v.empty()) return def;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace vdm::util
